#ifndef PROCLUS_OBS_TRACE_H_
#define PROCLUS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace proclus::obs {

// Escapes `s` for embedding in a JSON string literal (quotes not included).
std::string JsonEscape(const std::string& s);

// One key/value argument attached to a trace event ("args" in the Chrome
// trace_event format).
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  std::string name;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  static TraceArg Int(std::string name, int64_t value) {
    TraceArg arg;
    arg.name = std::move(name);
    arg.kind = Kind::kInt;
    arg.int_value = value;
    return arg;
  }
  static TraceArg Double(std::string name, double value) {
    TraceArg arg;
    arg.name = std::move(name);
    arg.kind = Kind::kDouble;
    arg.double_value = value;
    return arg;
  }
  static TraceArg Str(std::string name, std::string value) {
    TraceArg arg;
    arg.name = std::move(name);
    arg.kind = Kind::kString;
    arg.string_value = std::move(value);
    return arg;
  }
};

// One recorded event. `phase` uses the Chrome trace_event phase letters:
// 'X' = complete (ts + dur), 'i' = instant.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::vector<TraceArg> args;
};

// Thread-safe recorder of Chrome trace_event JSON ("catapult" format), the
// format chrome://tracing and ui.perfetto.dev load directly. Spans carry
// wall-clock durations; the simulated device additionally emits per-kernel
// events on a synthetic "device" track whose durations are the *modeled*
// kernel seconds (docs/observability.md describes the span taxonomy).
//
// Cost model: instrumentation sites hold a `TraceRecorder*` that is null (or
// a recorder with recording disabled) when tracing is off, so a disabled
// site costs one branch — no clock read, no allocation, no lock.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Microseconds since the recorder was constructed (the trace epoch).
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Records a complete ('X') event on the calling thread's track.
  void AddComplete(const std::string& name, const std::string& category,
                   double ts_us, double dur_us,
                   std::vector<TraceArg> args = {}) EXCLUDES(mutex_);

  // Records a complete event on an explicit track (see RegisterTrack).
  void AddCompleteOnTrack(int track, const std::string& name,
                          const std::string& category, double ts_us,
                          double dur_us, std::vector<TraceArg> args = {})
      EXCLUDES(mutex_);

  // Records an instant ('i') event on the calling thread's track.
  void AddInstant(const std::string& name, const std::string& category,
                  std::vector<TraceArg> args = {}) EXCLUDES(mutex_);

  // Creates a named synthetic track (rendered like a thread in the viewer)
  // and returns its tid. Used for the simulated device's modeled timeline.
  int RegisterTrack(const std::string& name) EXCLUDES(mutex_);

  int64_t event_count() const EXCLUDES(mutex_);

  // Copy of the recorded events, in recording order. For tests.
  std::vector<TraceEvent> Snapshot() const EXCLUDES(mutex_);

  // Writes the full trace as Chrome trace_event JSON:
  //   {"traceEvents":[...], "displayTimeUnit":"ms"}
  // including process/thread metadata events naming the tracks.
  void WriteJson(std::ostream& out) const EXCLUDES(mutex_);

  // WriteJson to `path`. IoError on failure.
  Status WriteFile(const std::string& path) const EXCLUDES(mutex_);

 private:
  int CurrentTid() REQUIRES(mutex_);

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};

  // Leaf lock: nothing is called out of a TraceRecorder while it is held,
  // and callers must not hold a service lock when they enter (obs locks sit
  // at the bottom of the hierarchy, docs/concurrency.md).
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, int> thread_tids_ GUARDED_BY(mutex_);
  std::vector<std::pair<int, std::string>> named_tracks_ GUARDED_BY(mutex_);
  int next_tid_ GUARDED_BY(mutex_) = 1;
  // Synthetic tracks count down from here so they sort after real threads.
  int next_track_ GUARDED_BY(mutex_) = 1000;
};

// RAII span: records a complete event covering its lifetime. Null recorder
// (or recording disabled) makes construction and destruction near-free.
// Arguments added with AddArg are attached when the span ends.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* category)
      : recorder_(Active(recorder)), name_(name), category_(category) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  bool active() const { return recorder_ != nullptr; }

  void AddArg(TraceArg arg) {
    if (recorder_ != nullptr) args_.push_back(std::move(arg));
  }

  // Ends the span now (idempotent; the destructor calls it otherwise).
  void End() {
    if (recorder_ == nullptr) return;
    recorder_->AddComplete(name_, category_, start_us_,
                           recorder_->NowMicros() - start_us_,
                           std::move(args_));
    recorder_ = nullptr;
  }

 private:
  static TraceRecorder* Active(TraceRecorder* recorder) {
    return recorder != nullptr && recorder->enabled() ? recorder : nullptr;
  }

  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  std::vector<TraceArg> args_;
};

}  // namespace proclus::obs

#endif  // PROCLUS_OBS_TRACE_H_
