#include "obs/trace.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/json.h"

namespace proclus::obs {

std::string JsonEscape(const std::string& s) {
  // Shared implementation with the wire codec and metrics snapshots
  // (src/common/json.h). The trace writer keeps its streaming event
  // emission for volume but escapes through the one escape routine.
  return json::Escape(s);
}

namespace {

// JSON number formatting: finite, locale-independent, round-trippable for
// the magnitudes a trace carries (microsecond timestamps, modeled seconds).
void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

void AppendArgs(std::string* out, const std::vector<TraceArg>& args) {
  *out += "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) *out += ',';
    *out += '"';
    *out += JsonEscape(args[i].name);
    *out += "\":";
    switch (args[i].kind) {
      case TraceArg::Kind::kInt: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRId64, args[i].int_value);
        *out += buf;
        break;
      }
      case TraceArg::Kind::kDouble:
        AppendDouble(out, args[i].double_value);
        break;
      case TraceArg::Kind::kString:
        *out += '"';
        *out += JsonEscape(args[i].string_value);
        *out += '"';
        break;
    }
  }
  *out += '}';
}

void AppendEvent(std::string* out, const TraceEvent& event) {
  *out += "{\"name\":\"";
  *out += JsonEscape(event.name);
  *out += "\",\"cat\":\"";
  *out += JsonEscape(event.category);
  *out += "\",\"ph\":\"";
  *out += event.phase;
  *out += "\",\"pid\":1,\"tid\":";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", event.tid);
  *out += buf;
  *out += ",\"ts\":";
  AppendDouble(out, event.ts_us);
  if (event.phase == 'X') {
    *out += ",\"dur\":";
    AppendDouble(out, event.dur_us);
  }
  if (event.phase == 'i') *out += ",\"s\":\"t\"";
  *out += ',';
  AppendArgs(out, event.args);
  *out += '}';
}

}  // namespace

int TraceRecorder::CurrentTid() {
  const std::thread::id id = std::this_thread::get_id();
  const auto it = thread_tids_.find(id);
  if (it != thread_tids_.end()) return it->second;
  const int tid = next_tid_++;
  thread_tids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::AddComplete(const std::string& name,
                                const std::string& category, double ts_us,
                                double dur_us, std::vector<TraceArg> args) {
  if (!enabled()) return;
  MutexLock lock(&mutex_);
  TraceEvent& event = events_.emplace_back();
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = CurrentTid();
  event.args = std::move(args);
}

void TraceRecorder::AddCompleteOnTrack(int track, const std::string& name,
                                       const std::string& category,
                                       double ts_us, double dur_us,
                                       std::vector<TraceArg> args) {
  if (!enabled()) return;
  MutexLock lock(&mutex_);
  TraceEvent& event = events_.emplace_back();
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = track;
  event.args = std::move(args);
}

void TraceRecorder::AddInstant(const std::string& name,
                               const std::string& category,
                               std::vector<TraceArg> args) {
  if (!enabled()) return;
  const double now = NowMicros();
  MutexLock lock(&mutex_);
  TraceEvent& event = events_.emplace_back();
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_us = now;
  event.tid = CurrentTid();
  event.args = std::move(args);
}

int TraceRecorder::RegisterTrack(const std::string& name) {
  MutexLock lock(&mutex_);
  const int track = next_track_++;
  named_tracks_.emplace_back(track, name);
  return track;
}

int64_t TraceRecorder::event_count() const {
  MutexLock lock(&mutex_);
  return static_cast<int64_t>(events_.size());
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  MutexLock lock(&mutex_);
  return events_;
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  MutexLock lock(&mutex_);
  std::string buffer;
  buffer.reserve(events_.size() * 160 + 1024);
  buffer += "{\"traceEvents\":[";
  bool first = true;
  auto metadata = [&](int tid, const char* kind, const std::string& value) {
    if (!first) buffer += ',';
    first = false;
    buffer += "{\"name\":\"";
    buffer += kind;
    buffer += "\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", tid);
    buffer += buf;
    buffer += ",\"args\":{\"name\":\"";
    buffer += JsonEscape(value);
    buffer += "\"}}";
  };
  metadata(0, "process_name", "proclus");
  for (const auto& [track, name] : named_tracks_) {
    metadata(track, "thread_name", name);
  }
  for (const TraceEvent& event : events_) {
    if (!first) buffer += ',';
    first = false;
    AppendEvent(&buffer, event);
  }
  buffer += "],\"displayTimeUnit\":\"ms\"}\n";
  out << buffer;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  WriteJson(out);
  if (!out.good()) return Status::IoError("trace write failed: " + path);
  return Status::OK();
}

}  // namespace proclus::obs
