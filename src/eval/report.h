#ifndef PROCLUS_EVAL_REPORT_H_
#define PROCLUS_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "data/dataset.h"

namespace proclus::eval {

// Human-readable summaries of a clustering, used by the CLI and examples.

// Per-cluster digest: size, subspace, medoid, in-subspace centroid and the
// mean segmental distance of members to their medoid.
struct ClusterDigest {
  int cluster = 0;
  int medoid = 0;
  int64_t size = 0;
  std::vector<int> dimensions;
  std::vector<double> centroid;        // one value per selected dimension
  double mean_segmental_distance = 0;  // members to medoid, own subspace
};

// Computes the digest for every cluster. `data` must be the matrix the
// result was computed on.
std::vector<ClusterDigest> Digest(const data::Matrix& data,
                                  const core::ProclusResult& result);

// Renders the digests as an aligned text table. `dimension_names` is
// optional (empty = print indices); when provided it must have one entry
// per data dimension.
std::string FormatClusterTable(
    const std::vector<ClusterDigest>& digests,
    const std::vector<std::string>& dimension_names = {});

// One-paragraph quality summary against ground truth (ARI, NMI, purity and,
// when true subspaces are known, subspace recovery).
std::string FormatQualitySummary(const data::Dataset& dataset,
                                 const core::ProclusResult& result);

}  // namespace proclus::eval

#endif  // PROCLUS_EVAL_REPORT_H_
