#include "eval/report.h"

#include <cstdio>
#include <sstream>

#include "common/macros.h"
#include "core/subroutines.h"
#include "eval/metrics.h"

namespace proclus::eval {

std::vector<ClusterDigest> Digest(const data::Matrix& data,
                                  const core::ProclusResult& result) {
  const int k = result.k();
  const int64_t d = data.cols();
  PROCLUS_CHECK(static_cast<int64_t>(result.assignment.size()) ==
                data.rows());
  std::vector<ClusterDigest> digests(k);
  for (int i = 0; i < k; ++i) {
    digests[i].cluster = i;
    digests[i].medoid = result.medoids[i];
    digests[i].dimensions = result.dimensions[i];
    digests[i].centroid.assign(result.dimensions[i].size(), 0.0);
  }
  for (int64_t p = 0; p < data.rows(); ++p) {
    const int c = result.assignment[p];
    if (c == core::kOutlier) continue;
    PROCLUS_CHECK(c >= 0 && c < k);
    ClusterDigest& digest = digests[c];
    ++digest.size;
    const float* row = data.Row(p);
    for (size_t s = 0; s < digest.dimensions.size(); ++s) {
      digest.centroid[s] += row[digest.dimensions[s]];
    }
    digest.mean_segmental_distance += core::SegmentalDistance(
        row, data.Row(digest.medoid), digest.dimensions.data(),
        static_cast<int>(digest.dimensions.size()));
  }
  for (ClusterDigest& digest : digests) {
    if (digest.size == 0) continue;
    for (double& v : digest.centroid) v /= static_cast<double>(digest.size);
    digest.mean_segmental_distance /= static_cast<double>(digest.size);
  }
  (void)d;
  return digests;
}

std::string FormatClusterTable(
    const std::vector<ClusterDigest>& digests,
    const std::vector<std::string>& dimension_names) {
  std::ostringstream out;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%-8s %-8s %-8s %-12s %s\n",
                "cluster", "size", "medoid", "mean_dist", "subspace");
  out << buffer;
  for (const ClusterDigest& digest : digests) {
    std::snprintf(buffer, sizeof(buffer), "%-8d %-8lld %-8d %-12.5f ",
                  digest.cluster, static_cast<long long>(digest.size),
                  digest.medoid, digest.mean_segmental_distance);
    out << buffer;
    for (size_t s = 0; s < digest.dimensions.size(); ++s) {
      if (s) out << ", ";
      const int dim = digest.dimensions[s];
      if (dim >= 0 && dim < static_cast<int>(dimension_names.size())) {
        out << dimension_names[dim];
      } else {
        out << dim;
      }
      std::snprintf(buffer, sizeof(buffer), "=%.3f", digest.centroid[s]);
      out << buffer;
    }
    out << '\n';
  }
  return out.str();
}

std::string FormatQualitySummary(const data::Dataset& dataset,
                                 const core::ProclusResult& result) {
  std::ostringstream out;
  if (!dataset.has_ground_truth()) {
    out << "no ground truth available\n";
    return out.str();
  }
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "ARI=%.4f NMI=%.4f purity=%.4f",
                AdjustedRandIndex(dataset.labels, result.assignment),
                NormalizedMutualInformation(dataset.labels,
                                            result.assignment),
                Purity(dataset.labels, result.assignment));
  out << buffer;
  if (!dataset.true_subspaces.empty()) {
    std::snprintf(buffer, sizeof(buffer), " subspace_recovery=%.4f",
                  SubspaceRecovery(dataset.labels, result.assignment,
                                   dataset.true_subspaces,
                                   result.dimensions));
    out << buffer;
  }
  out << '\n';
  return out.str();
}

}  // namespace proclus::eval
