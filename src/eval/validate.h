#ifndef PROCLUS_EVAL_VALIDATE_H_
#define PROCLUS_EVAL_VALIDATE_H_

#include "common/status.h"
#include "core/params.h"
#include "core/result.h"
#include "data/matrix.h"

namespace proclus::eval {

// Checks the structural invariants the PROCLUS definition guarantees for a
// result:
//   * exactly k medoids, all distinct valid point ids;
//   * every cluster has >= 2 dimensions, dimensions are sorted, unique and
//     in range, and the total number of selected dimensions is k*l;
//   * assignment has one entry per point, each in [0,k) or kOutlier;
//   * every non-outlier point is assigned to a cluster whose medoid
//     minimizes the Manhattan segmental distance in that cluster's subspace
//     (ties allowed);
//   * costs are finite and non-negative.
// Returns the first violated invariant as FailedPrecondition.
Status ValidateResult(const data::Matrix& data,
                      const core::ProclusParams& params,
                      const core::ProclusResult& result);

}  // namespace proclus::eval

#endif  // PROCLUS_EVAL_VALIDATE_H_
