#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/macros.h"

namespace proclus::eval {

namespace {

// Remaps labels to dense ids 0..m-1; -1 stays -1.
std::vector<int> Densify(const std::vector<int>& labels, int* num_clusters) {
  std::map<int, int> remap;
  std::vector<int> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      out[i] = -1;
      continue;
    }
    auto [it, inserted] =
        remap.emplace(labels[i], static_cast<int>(remap.size()));
    out[i] = it->second;
  }
  *num_clusters = static_cast<int>(remap.size());
  return out;
}

// Contingency table between two dense labelings (noise rows/columns get
// index m / index c respectively, each noise point its own group is
// approximated by excluding noise pairs in the pair counts).
std::vector<std::vector<int64_t>> Contingency(const std::vector<int>& a,
                                              const std::vector<int>& b,
                                              int ka, int kb) {
  std::vector<std::vector<int64_t>> table(ka, std::vector<int64_t>(kb, 0));
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    ++table[a[i]][b[i]];
  }
  return table;
}

double Comb2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

double PairCounts::Precision() const {
  const double denom = static_cast<double>(true_positive + false_positive);
  return denom > 0.0 ? static_cast<double>(true_positive) / denom : 0.0;
}

double PairCounts::Recall() const {
  const double denom = static_cast<double>(true_positive + false_negative);
  return denom > 0.0 ? static_cast<double>(true_positive) / denom : 0.0;
}

double PairCounts::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double PairCounts::Rand() const {
  const double total = static_cast<double>(true_positive + false_positive +
                                           false_negative + true_negative);
  return total > 0.0
             ? static_cast<double>(true_positive + true_negative) / total
             : 0.0;
}

PairCounts CountPairs(const std::vector<int>& truth,
                      const std::vector<int>& predicted) {
  PROCLUS_CHECK(truth.size() == predicted.size());
  // O(n^2) pair counting via the contingency table instead: with the table
  // N_{ij}, TP = sum C(N_ij, 2), etc.
  int kt = 0;
  int kp = 0;
  const std::vector<int> t = Densify(truth, &kt);
  const std::vector<int> p = Densify(predicted, &kp);
  const auto table = Contingency(t, p, kt, kp);
  int64_t n = 0;
  std::vector<int64_t> row(kt, 0);
  std::vector<int64_t> col(kp, 0);
  for (int i = 0; i < kt; ++i) {
    for (int j = 0; j < kp; ++j) {
      row[i] += table[i][j];
      col[j] += table[i][j];
      n += table[i][j];
    }
  }
  double tp = 0.0;
  for (int i = 0; i < kt; ++i) {
    for (int j = 0; j < kp; ++j) tp += Comb2(static_cast<double>(table[i][j]));
  }
  double same_t = 0.0;
  for (int i = 0; i < kt; ++i) same_t += Comb2(static_cast<double>(row[i]));
  double same_p = 0.0;
  for (int j = 0; j < kp; ++j) same_p += Comb2(static_cast<double>(col[j]));
  PairCounts counts;
  counts.true_positive = static_cast<int64_t>(tp);
  counts.false_positive = static_cast<int64_t>(same_p - tp);
  counts.false_negative = static_cast<int64_t>(same_t - tp);
  counts.true_negative = static_cast<int64_t>(
      Comb2(static_cast<double>(n)) - same_p - same_t + tp);
  return counts;
}

double AdjustedRandIndex(const std::vector<int>& truth,
                         const std::vector<int>& predicted) {
  PROCLUS_CHECK(truth.size() == predicted.size());
  int kt = 0;
  int kp = 0;
  const std::vector<int> t = Densify(truth, &kt);
  const std::vector<int> p = Densify(predicted, &kp);
  if (kt == 0 || kp == 0) return 0.0;
  const auto table = Contingency(t, p, kt, kp);
  int64_t n = 0;
  std::vector<int64_t> row(kt, 0);
  std::vector<int64_t> col(kp, 0);
  for (int i = 0; i < kt; ++i) {
    for (int j = 0; j < kp; ++j) {
      row[i] += table[i][j];
      col[j] += table[i][j];
      n += table[i][j];
    }
  }
  if (n < 2) return 0.0;
  double index = 0.0;
  for (int i = 0; i < kt; ++i) {
    for (int j = 0; j < kp; ++j) {
      index += Comb2(static_cast<double>(table[i][j]));
    }
  }
  double sum_row = 0.0;
  for (int i = 0; i < kt; ++i) sum_row += Comb2(static_cast<double>(row[i]));
  double sum_col = 0.0;
  for (int j = 0; j < kp; ++j) sum_col += Comb2(static_cast<double>(col[j]));
  const double expected = sum_row * sum_col / Comb2(static_cast<double>(n));
  const double max_index = 0.5 * (sum_row + sum_col);
  if (max_index == expected) return 0.0;
  return (index - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const std::vector<int>& truth,
                                   const std::vector<int>& predicted) {
  PROCLUS_CHECK(truth.size() == predicted.size());
  int kt = 0;
  int kp = 0;
  const std::vector<int> t = Densify(truth, &kt);
  const std::vector<int> p = Densify(predicted, &kp);
  if (kt == 0 || kp == 0) return 0.0;
  const auto table = Contingency(t, p, kt, kp);
  int64_t n = 0;
  std::vector<int64_t> row(kt, 0);
  std::vector<int64_t> col(kp, 0);
  for (int i = 0; i < kt; ++i) {
    for (int j = 0; j < kp; ++j) {
      row[i] += table[i][j];
      col[j] += table[i][j];
      n += table[i][j];
    }
  }
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  double mutual = 0.0;
  for (int i = 0; i < kt; ++i) {
    for (int j = 0; j < kp; ++j) {
      if (table[i][j] == 0) continue;
      const double pij = table[i][j] / dn;
      mutual += pij * std::log(pij * dn * dn /
                               (static_cast<double>(row[i]) *
                                static_cast<double>(col[j])));
    }
  }
  double ht = 0.0;
  for (int i = 0; i < kt; ++i) {
    if (row[i] == 0) continue;
    const double pi = row[i] / dn;
    ht -= pi * std::log(pi);
  }
  double hp = 0.0;
  for (int j = 0; j < kp; ++j) {
    if (col[j] == 0) continue;
    const double pj = col[j] / dn;
    hp -= pj * std::log(pj);
  }
  const double denom = 0.5 * (ht + hp);
  return denom > 0.0 ? mutual / denom : 0.0;
}

double Purity(const std::vector<int>& truth,
              const std::vector<int>& predicted) {
  PROCLUS_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  std::map<int, std::map<int, int64_t>> votes;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] < 0) continue;
    ++votes[predicted[i]][truth[i]];
  }
  int64_t correct = 0;
  for (const auto& [cluster, counts] : votes) {
    int64_t best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    correct += best;
  }
  // Noise predicted as noise counts as correct.
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] < 0 && truth[i] < 0) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double SubspaceRecovery(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    const std::vector<std::vector<int>>& true_subspaces,
    const std::vector<std::vector<int>>& found_dimensions) {
  PROCLUS_CHECK(truth.size() == predicted.size());
  if (found_dimensions.empty()) return 0.0;
  // Match each predicted cluster to the truth cluster it overlaps most.
  std::map<int, std::map<int, int64_t>> overlap;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] < 0 || truth[i] < 0) continue;
    ++overlap[predicted[i]][truth[i]];
  }
  double total = 0.0;
  int counted = 0;
  for (size_t c = 0; c < found_dimensions.size(); ++c) {
    const auto it = overlap.find(static_cast<int>(c));
    if (it == overlap.end()) continue;
    int best_label = -1;
    int64_t best_count = 0;
    for (const auto& [label, count] : it->second) {
      if (count > best_count) {
        best_count = count;
        best_label = label;
      }
    }
    if (best_label < 0 ||
        best_label >= static_cast<int>(true_subspaces.size())) {
      continue;
    }
    const std::set<int> found(found_dimensions[c].begin(),
                              found_dimensions[c].end());
    const std::set<int> expected(true_subspaces[best_label].begin(),
                                 true_subspaces[best_label].end());
    std::vector<int> inter;
    std::set_intersection(found.begin(), found.end(), expected.begin(),
                          expected.end(), std::back_inserter(inter));
    const size_t uni = found.size() + expected.size() - inter.size();
    total += uni > 0 ? static_cast<double>(inter.size()) /
                           static_cast<double>(uni)
                     : 0.0;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

}  // namespace proclus::eval
