#include "eval/validate.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "core/subroutines.h"

namespace proclus::eval {

Status ValidateResult(const data::Matrix& data,
                      const core::ProclusParams& params,
                      const core::ProclusResult& result) {
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  const int k = params.k;

  if (static_cast<int>(result.medoids.size()) != k) {
    return Status::FailedPrecondition("wrong number of medoids");
  }
  std::set<int> medoid_set;
  for (const int m : result.medoids) {
    if (m < 0 || m >= n) {
      return Status::FailedPrecondition("medoid id out of range");
    }
    if (!medoid_set.insert(m).second) {
      return Status::FailedPrecondition("duplicate medoid");
    }
  }

  if (static_cast<int>(result.dimensions.size()) != k) {
    return Status::FailedPrecondition("wrong number of dimension sets");
  }
  int64_t total_dims = 0;
  for (const auto& dims : result.dimensions) {
    if (static_cast<int>(dims.size()) < 2) {
      return Status::FailedPrecondition("cluster with fewer than 2 dims");
    }
    if (!std::is_sorted(dims.begin(), dims.end())) {
      return Status::FailedPrecondition("dimensions not sorted");
    }
    if (std::adjacent_find(dims.begin(), dims.end()) != dims.end()) {
      return Status::FailedPrecondition("duplicate dimension in cluster");
    }
    if (dims.front() < 0 || dims.back() >= d) {
      return Status::FailedPrecondition("dimension out of range");
    }
    total_dims += static_cast<int64_t>(dims.size());
  }
  if (total_dims != static_cast<int64_t>(k) * params.l) {
    return Status::FailedPrecondition(
        "total selected dimensions != k*l (" + std::to_string(total_dims) +
        " vs " + std::to_string(static_cast<int64_t>(k) * params.l) + ")");
  }

  if (static_cast<int64_t>(result.assignment.size()) != n) {
    return Status::FailedPrecondition("assignment size != n");
  }
  for (int64_t p = 0; p < n; ++p) {
    const int c = result.assignment[p];
    if (c != core::kOutlier && (c < 0 || c >= k)) {
      return Status::FailedPrecondition("assignment value out of range");
    }
  }

  // Non-outlier points must sit with a segmental-distance-minimizing medoid.
  for (int64_t p = 0; p < n; ++p) {
    const int c = result.assignment[p];
    if (c == core::kOutlier) continue;
    const float* point = data.Row(p);
    float best = std::numeric_limits<float>::infinity();
    for (int i = 0; i < k; ++i) {
      const float sd = core::SegmentalDistance(
          point, data.Row(result.medoids[i]), result.dimensions[i].data(),
          static_cast<int>(result.dimensions[i].size()));
      best = std::min(best, sd);
    }
    const float assigned = core::SegmentalDistance(
        point, data.Row(result.medoids[c]), result.dimensions[c].data(),
        static_cast<int>(result.dimensions[c].size()));
    if (assigned > best) {
      return Status::FailedPrecondition(
          "point " + std::to_string(p) +
          " not assigned to the closest medoid");
    }
  }

  if (!std::isfinite(result.iterative_cost) || result.iterative_cost < 0.0) {
    return Status::FailedPrecondition("iterative cost not finite/positive");
  }
  if (!std::isfinite(result.refined_cost) || result.refined_cost < 0.0) {
    return Status::FailedPrecondition("refined cost not finite/positive");
  }
  return Status::OK();
}

}  // namespace proclus::eval
