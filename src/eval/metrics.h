#ifndef PROCLUS_EVAL_METRICS_H_
#define PROCLUS_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace proclus::eval {

// Clustering-quality metrics against a ground-truth labeling. PROCLUS's
// correctness in this reproduction is established by cross-variant
// equivalence; these metrics verify the clusterings are *sensible* on
// generated data (and power the examples). Noise/outliers are encoded as -1
// in both vectors; a pair is skipped if either point is -1 unless stated
// otherwise.

// Pair-counting confusion for two labelings (noise handled as its own
// singleton "cluster" per point).
struct PairCounts {
  int64_t true_positive = 0;   // same cluster in both
  int64_t false_positive = 0;  // same in predicted, different in truth
  int64_t false_negative = 0;  // different in predicted, same in truth
  int64_t true_negative = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  // Rand index and Adjusted Rand Index.
  double Rand() const;
};

// Counts point pairs over the two labelings. Vectors must be equal length.
PairCounts CountPairs(const std::vector<int>& truth,
                      const std::vector<int>& predicted);

// Adjusted Rand Index in [-1, 1]; 1 = identical partitions.
double AdjustedRandIndex(const std::vector<int>& truth,
                         const std::vector<int>& predicted);

// Normalized Mutual Information in [0, 1] (arithmetic-mean normalization).
double NormalizedMutualInformation(const std::vector<int>& truth,
                                   const std::vector<int>& predicted);

// Fraction of points whose predicted cluster's majority truth label matches
// their own (noise points count as mismatches unless predicted noise).
double Purity(const std::vector<int>& truth,
              const std::vector<int>& predicted);

// Average Jaccard similarity between each cluster's found dimensions and the
// true subspace of the ground-truth cluster it overlaps most (the subspace
// recovery quality of a projected clustering).
double SubspaceRecovery(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    const std::vector<std::vector<int>>& true_subspaces,
    const std::vector<std::vector<int>>& found_dimensions);

}  // namespace proclus::eval

#endif  // PROCLUS_EVAL_METRICS_H_
