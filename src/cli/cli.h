#ifndef PROCLUS_CLI_CLI_H_
#define PROCLUS_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/api.h"

namespace proclus::cli {

// Configuration assembled from command-line arguments.
struct CliConfig {
  // Input: either a CSV file (or a binary .pds dataset, detected by
  // extension — docs/store.md)...
  std::string input_path;
  bool input_has_labels = false;
  // ...or a generated synthetic dataset ("--generate n,d,clusters").
  bool generate = false;
  int64_t gen_n = 64000;
  int gen_d = 15;
  int gen_clusters = 10;

  bool normalize = true;
  core::ProclusParams params;
  core::ClusterOptions options;
  // --simtcheck: run GPU work under the simtcheck race/memory checker.
  // run/--explore: sets options.gpu_sanitize; batch/serve: additionally
  // puts the service's pooled devices into checked mode. Any finding makes
  // the run (or job) fail, so the process exits non-zero.
  bool simtcheck = false;
  // Multi-parameter mode: run the 9-combination (k,l) grid with full reuse.
  bool explore = false;
  // Batch mode ("proclus_cli batch ..."): submit jobs to a ProclusService
  // instead of one blocking run. `batch_jobs` holds the parsed k:l list.
  bool batch = false;
  std::vector<std::pair<int, int>> batch_jobs;
  // Submit the k:l list as one sweep job (shared work) instead of
  // independent single-run jobs.
  bool batch_sweep = false;
  // Shard budget for --sweep: at most this many pooled devices run the
  // sweep concurrently (0 = auto, bounded by the pool).
  int batch_shards = 0;
  int batch_workers = 2;
  int batch_gpu_devices = 1;
  double batch_timeout_ms = 0.0;
  // True when any batch-only tuning flag (--workers/--gpu-devices/
  // --timeout-ms) appeared, so non-batch invocations can reject them
  // instead of silently ignoring them.
  bool batch_tuning_seen = false;
  // Serve mode ("proclus_cli serve ..."): host a ProclusServer (src/net/)
  // over an in-process ProclusService until SIGINT/SIGTERM, then drain.
  // Accepts the batch tuning flags (--workers/--gpu-devices/--timeout-ms;
  // --timeout-ms becomes the service's default per-job deadline) plus the
  // serve_* knobs below. With --generate (or --input) the dataset is
  // pre-registered under `serve_dataset_id` so clients can submit by id
  // without shipping data.
  bool serve = false;
  std::string serve_host = "127.0.0.1";
  // 0 = ephemeral; the chosen port is printed as "serving on HOST:PORT".
  int serve_port = 0;
  int serve_max_connections = 32;
  int serve_queue_capacity = 256;
  std::string serve_dataset_id = "default";
  // --fault-plan FILE: serve with deterministic fault injection per the
  // JSON plan (net/fault.h; docs/serving.md has the format). Empty = off.
  std::string serve_fault_plan_path;
  // --store-dir DIR: spill directory for the service's dataset store
  // (docs/store.md). Empty = memory-only (never spills or evicts).
  std::string store_dir;
  // --store-budget-mb N: resident-bytes budget; past it, unpinned LRU
  // datasets spill to --store-dir. 0 = unbounded.
  int64_t store_budget_mb = 0;
  // --result-cache-mb N: in-memory budget for the content-addressed result
  // cache (service/result_cache.h; docs/serving.md). 0 = caching off,
  // every job executes.
  int64_t result_cache_mb = 0;
  // --result-cache-dir DIR: spill directory for evicted cached results
  // (`.pcr` files). Empty = evicted results are dropped.
  std::string result_cache_dir;
  // True when any serve-only flag (--host/--port/--max-connections/
  // --queue-capacity/--dataset-id) appeared, so other modes can reject
  // them instead of silently ignoring them. Upload mode shares the
  // connection flags (--host/--port/--dataset-id), so it accepts these.
  bool serve_flag_seen = false;
  // True when --store-dir/--store-budget-mb appeared (serve only).
  bool store_flag_seen = false;
  // True when --result-cache-mb/--result-cache-dir appeared (serve only).
  bool result_cache_flag_seen = false;
  // Upload mode ("proclus_cli upload ..."): load or generate the dataset
  // locally and stream it to a running server over the chunked binary
  // upload path (docs/store.md), then exit. Uses serve_host/serve_port/
  // serve_dataset_id for the connection.
  bool upload = false;
  // Convert mode ("proclus_cli convert ..."): pure format conversion of
  // --input (CSV or .pds) into the binary .pds file named by --output.
  // Never normalizes — run modes normalize at load time, so a converted
  // file clusters bit-identically to its source CSV.
  bool convert = false;
  // Where to write the per-point assignment (empty = don't).
  std::string output_path;
  // Where to write a Chrome trace_event JSON of the run (empty = no
  // tracing). Load the file in chrome://tracing or ui.perfetto.dev.
  std::string trace_out_path;
  bool show_help = false;
};

// Usage text for --help.
std::string UsageText();

// Parses `args` (without argv[0]). Unknown flags, malformed values and
// missing inputs yield InvalidArgument with a descriptive message.
Status ParseArgs(const std::vector<std::string>& args, CliConfig* config);

// Loads/generates the dataset, runs the configured clustering, prints a
// report to `out` and optionally writes the assignment CSV. This is the
// whole CLI behind the thin main() in tools/proclus_cli.cc.
Status RunCli(const CliConfig& config, std::ostream& out);

// Serve mode (dispatched by RunCli when config.serve is set): binds a
// ProclusServer, prints "serving on HOST:PORT", installs SIGINT/SIGTERM
// handlers, and blocks until a stop signal arrives; then stops the server
// (draining in-flight jobs), shuts the service down, and prints the
// service's terminal counters.
Status RunServe(const CliConfig& config, std::ostream& out);

// Upload mode (dispatched by RunCli when config.upload is set): loads or
// generates the dataset exactly like a run would (normalization included),
// streams it to the server at serve_host:serve_port over the chunked
// binary path, and prints the content hash the store assigned.
Status RunUpload(const CliConfig& config, std::ostream& out);

// Convert mode (dispatched by RunCli when config.convert is set): writes
// the input dataset to `output_path` as a .pds file, bit-identical to what
// the CSV reader produced (no normalization).
Status RunConvert(const CliConfig& config, std::ostream& out);

}  // namespace proclus::cli

#endif  // PROCLUS_CLI_CLI_H_
