#include "cli/cli.h"

#include <charconv>
#include <chrono>
#include <csignal>
#include <fstream>
#include <optional>
#include <thread>

#include "common/timer.h"
#include "core/multi_param.h"
#include "obs/trace.h"
#include "service/proclus_service.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/normalize.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/server.h"
#include "store/pds_format.h"

namespace proclus::cli {

namespace {

Status ParseInt(const std::string& value, const std::string& flag,
                int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), *out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Status::InvalidArgument("expected an integer for " + flag +
                                   ", got '" + value + "'");
  }
  return Status::OK();
}

Status ParseDouble(const std::string& value, const std::string& flag,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected a number for " + flag +
                                   ", got '" + value + "'");
  }
  return Status::OK();
}

}  // namespace

std::string UsageText() {
  return R"(proclus_cli - projected clustering with (GPU-FAST-)PROCLUS

Input (one required):
  --input FILE          headerless CSV of floats, one point per row, or a
                        binary .pds dataset (by extension; docs/store.md)
  --labels              the CSV's last column is an integer class label
  --generate N,D,C      synthesize N points, D dims, C subspace clusters

Algorithm:
  --k INT               number of clusters (default 10)
  --l INT               average dimensions per cluster (default 5)
  --A NUM --B NUM       sampling constants (default 100 / 10)
  --min-dev NUM         bad-medoid threshold (default 0.7)
  --itr-pat INT         patience (default 5)
  --seed INT            random seed (default 42)
  --backend NAME        cpu | mc | gpu (default gpu)
  --strategy NAME       baseline | fast | faststar (default fast)
  --threads INT         workers for mc (default: hardware)
  --explore             run the 9-combination (k,l) grid with full reuse
  --simtcheck           run gpu kernels under the simtcheck race & memory
                        checker (docs/simt.md); findings fail the run.
                        PROCLUS_SIMTCHECK=1 in the environment does the
                        same without the flag

Batch mode (proclus_cli batch ...):
  submits jobs to an in-process ProclusService (persistent devices, shared
  worker pool) instead of one blocking run; accepts all flags above plus:
  --jobs K:L[,K:L...]   the jobs to run (default: the configured --k/--l)
  --sweep               submit the --jobs list as one work-sharing sweep
  --shards INT          device-lane budget for --sweep; gpu sweeps shard
                        across up to this many pooled devices (0 = auto)
  --workers INT         concurrent service workers (default 2)
  --gpu-devices INT     pooled devices for gpu jobs (default 1)
  --timeout-ms NUM      per-job deadline, queue wait included (default none)

Serve mode (proclus_cli serve ...):
  hosts the TCP serving layer (docs/serving.md) over an in-process
  ProclusService until SIGINT/SIGTERM, then drains; accepts the batch
  tuning flags above (--timeout-ms = default per-job deadline) plus:
  --host ADDR           listen address (default 127.0.0.1)
  --port INT            listen port; 0 picks one (printed on stdout)
  --max-connections INT concurrent connection budget (default 32)
  --queue-capacity INT  service queue bound -> RESOURCE_EXHAUSTED
                        backpressure when full (default 256)
  --dataset-id NAME     id for the pre-registered --generate/--input
                        dataset (default "default")
  --fault-plan FILE     serve with deterministic fault injection per the
                        JSON plan (docs/serving.md); for chaos testing
  --store-dir DIR       dataset-store spill directory (docs/store.md);
                        datasets evicted under memory pressure reload from
                        here transparently (default: memory-only)
  --store-budget-mb INT resident-bytes budget; past it, unpinned LRU
                        datasets spill to --store-dir (default 0 = none)
  --result-cache-mb INT in-memory budget for the content-addressed result
                        cache (docs/serving.md): identical resubmits are
                        answered from cache, identical concurrent submits
                        run once (default 0 = caching off)
  --result-cache-dir DIR spill directory for evicted cached results
                        (.pcr files; default: evicted results are dropped)

Upload mode (proclus_cli upload ...):
  streams the --input/--generate dataset (normalized unless
  --no-normalize, same as a run) to a running server over the chunked
  binary upload path (docs/store.md) and prints its content hash;
  takes --host/--port (required) and --dataset-id for the target.

Convert mode (proclus_cli convert ...):
  writes the --input/--generate dataset to --output as a binary .pds
  file. Pure format conversion — never normalizes, so a converted CSV
  clusters bit-identically to the original.

Output:
  --output FILE         write per-point cluster ids (-1 = outlier)
  --trace-out FILE      write a Chrome trace_event JSON of the run
                        (open in chrome://tracing or ui.perfetto.dev)
  --no-normalize        skip min-max normalization
  --help                this text
)";
}

Status ParseArgs(const std::vector<std::string>& args, CliConfig* config) {
  if (config == nullptr) {
    return Status::InvalidArgument("config must not be null");
  }
  *config = CliConfig();
  config->options.backend = core::ComputeBackend::kGpu;
  config->options.strategy = core::Strategy::kFast;

  auto next_value = [&args](size_t* i, const std::string& flag,
                            std::string* value) -> Status {
    if (*i + 1 >= args.size()) {
      return Status::InvalidArgument("missing value for " + flag);
    }
    *value = args[++*i];
    return Status::OK();
  };

  size_t start = 0;
  if (!args.empty() && args[0] == "batch") {
    config->batch = true;
    start = 1;
  } else if (!args.empty() && args[0] == "serve") {
    config->serve = true;
    start = 1;
  } else if (!args.empty() && args[0] == "upload") {
    config->upload = true;
    start = 1;
  } else if (!args.empty() && args[0] == "convert") {
    config->convert = true;
    start = 1;
  }

  for (size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    int64_t int_value = 0;
    if (arg == "--help" || arg == "-h") {
      config->show_help = true;
      return Status::OK();
    } else if (arg == "--input") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->input_path));
    } else if (arg == "--labels") {
      config->input_has_labels = true;
    } else if (arg == "--generate") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      config->generate = true;
      const size_t c1 = value.find(',');
      const size_t c2 = value.find(',', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        return Status::InvalidArgument("--generate expects N,D,C");
      }
      int64_t d = 0;
      int64_t clusters = 0;
      PROCLUS_RETURN_NOT_OK(
          ParseInt(value.substr(0, c1), arg, &config->gen_n));
      PROCLUS_RETURN_NOT_OK(
          ParseInt(value.substr(c1 + 1, c2 - c1 - 1), arg, &d));
      PROCLUS_RETURN_NOT_OK(ParseInt(value.substr(c2 + 1), arg, &clusters));
      config->gen_d = static_cast<int>(d);
      config->gen_clusters = static_cast<int>(clusters);
    } else if (arg == "--k") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.k = static_cast<int>(int_value);
    } else if (arg == "--l") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.l = static_cast<int>(int_value);
    } else if (arg == "--A") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseDouble(value, arg, &config->params.a));
    } else if (arg == "--B") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseDouble(value, arg, &config->params.b));
    } else if (arg == "--min-dev") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(
          ParseDouble(value, arg, &config->params.min_dev));
    } else if (arg == "--itr-pat") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.itr_pat = static_cast<int>(int_value);
    } else if (arg == "--seed") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.seed = static_cast<uint64_t>(int_value);
    } else if (arg == "--backend") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      if (value == "cpu") {
        config->options.backend = core::ComputeBackend::kCpu;
      } else if (value == "mc") {
        config->options.backend = core::ComputeBackend::kMultiCore;
      } else if (value == "gpu") {
        config->options.backend = core::ComputeBackend::kGpu;
      } else {
        return Status::InvalidArgument("unknown backend: " + value);
      }
    } else if (arg == "--strategy") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      if (value == "baseline") {
        config->options.strategy = core::Strategy::kBaseline;
      } else if (value == "fast") {
        config->options.strategy = core::Strategy::kFast;
      } else if (value == "faststar") {
        config->options.strategy = core::Strategy::kFastStar;
      } else {
        return Status::InvalidArgument("unknown strategy: " + value);
      }
    } else if (arg == "--threads") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->options.num_threads = static_cast<int>(int_value);
    } else if (arg == "--explore") {
      config->explore = true;
    } else if (arg == "--simtcheck") {
      config->simtcheck = true;
    } else if (arg == "--jobs") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      size_t pos = 0;
      while (pos <= value.size()) {
        size_t comma = value.find(',', pos);
        if (comma == std::string::npos) comma = value.size();
        const std::string entry = value.substr(pos, comma - pos);
        const size_t colon = entry.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument("--jobs expects K:L[,K:L...], got '" +
                                         entry + "'");
        }
        int64_t k = 0;
        int64_t l = 0;
        PROCLUS_RETURN_NOT_OK(ParseInt(entry.substr(0, colon), arg, &k));
        PROCLUS_RETURN_NOT_OK(ParseInt(entry.substr(colon + 1), arg, &l));
        config->batch_jobs.emplace_back(static_cast<int>(k),
                                        static_cast<int>(l));
        pos = comma + 1;
      }
    } else if (arg == "--sweep") {
      config->batch_sweep = true;
    } else if (arg == "--shards") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->batch_shards = static_cast<int>(int_value);
      config->batch_tuning_seen = true;
    } else if (arg == "--workers") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->batch_workers = static_cast<int>(int_value);
      config->batch_tuning_seen = true;
    } else if (arg == "--gpu-devices") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->batch_gpu_devices = static_cast<int>(int_value);
      config->batch_tuning_seen = true;
    } else if (arg == "--timeout-ms") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseDouble(value, arg, &config->batch_timeout_ms));
      config->batch_tuning_seen = true;
    } else if (arg == "--host") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->serve_host));
      config->serve_flag_seen = true;
    } else if (arg == "--port") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->serve_port = static_cast<int>(int_value);
      config->serve_flag_seen = true;
    } else if (arg == "--max-connections") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->serve_max_connections = static_cast<int>(int_value);
      config->serve_flag_seen = true;
    } else if (arg == "--queue-capacity") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->serve_queue_capacity = static_cast<int>(int_value);
      config->serve_flag_seen = true;
    } else if (arg == "--dataset-id") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->serve_dataset_id));
      config->serve_flag_seen = true;
    } else if (arg == "--fault-plan") {
      PROCLUS_RETURN_NOT_OK(
          next_value(&i, arg, &config->serve_fault_plan_path));
      config->serve_flag_seen = true;
    } else if (arg == "--store-dir") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->store_dir));
      config->store_flag_seen = true;
    } else if (arg == "--store-budget-mb") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &config->store_budget_mb));
      config->store_flag_seen = true;
    } else if (arg == "--result-cache-dir") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->result_cache_dir));
      config->result_cache_flag_seen = true;
    } else if (arg == "--result-cache-mb") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &config->result_cache_mb));
      config->result_cache_flag_seen = true;
    } else if (arg == "--output") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->output_path));
    } else if (arg == "--trace-out") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->trace_out_path));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      config->trace_out_path = arg.substr(std::string("--trace-out=").size());
      if (config->trace_out_path.empty()) {
        return Status::InvalidArgument("missing value for --trace-out");
      }
    } else if (arg == "--no-normalize") {
      config->normalize = false;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg +
                                     " (see --help)");
    }
  }
  if (config->input_path.empty() && !config->generate && !config->serve) {
    return Status::InvalidArgument(
        "either --input or --generate is required (see --help)");
  }
  if (!config->input_path.empty() && config->generate) {
    return Status::InvalidArgument("--input and --generate are exclusive");
  }
  if (!config->batch && !config->serve &&
      (!config->batch_jobs.empty() || config->batch_sweep ||
       config->batch_tuning_seen)) {
    return Status::InvalidArgument(
        "--jobs/--sweep/--shards/--workers/--gpu-devices/--timeout-ms "
        "require batch mode (proclus_cli batch ...)");
  }
  if (config->serve &&
      (!config->batch_jobs.empty() || config->batch_sweep)) {
    return Status::InvalidArgument(
        "--jobs/--sweep make no sense in serve mode; clients submit jobs");
  }
  if (config->serve && (config->explore || !config->output_path.empty())) {
    return Status::InvalidArgument(
        "--explore/--output make no sense in serve mode");
  }
  if (!config->serve && !config->upload && config->serve_flag_seen) {
    return Status::InvalidArgument(
        "--host/--port/--max-connections/--queue-capacity/--dataset-id/"
        "--fault-plan require serve or upload mode");
  }
  if (!config->serve && config->store_flag_seen) {
    return Status::InvalidArgument(
        "--store-dir/--store-budget-mb require serve mode "
        "(proclus_cli serve ...)");
  }
  if (config->store_budget_mb < 0) {
    return Status::InvalidArgument("--store-budget-mb must be >= 0");
  }
  if (!config->serve && config->result_cache_flag_seen) {
    return Status::InvalidArgument(
        "--result-cache-mb/--result-cache-dir require serve mode "
        "(proclus_cli serve ...)");
  }
  if (config->result_cache_mb < 0) {
    return Status::InvalidArgument("--result-cache-mb must be >= 0");
  }
  if (!config->result_cache_dir.empty() && config->result_cache_mb == 0) {
    return Status::InvalidArgument(
        "--result-cache-dir requires --result-cache-mb > 0");
  }
  if (config->upload && config->serve_port <= 0) {
    return Status::InvalidArgument("upload mode requires --port");
  }
  if (config->upload && (config->explore || !config->output_path.empty())) {
    return Status::InvalidArgument(
        "--explore/--output make no sense in upload mode");
  }
  if (config->convert && config->explore) {
    return Status::InvalidArgument(
        "--explore makes no sense in convert mode");
  }
  if (config->convert && config->output_path.empty()) {
    return Status::InvalidArgument(
        "convert mode requires --output FILE.pds");
  }
  if (config->batch && config->explore) {
    return Status::InvalidArgument("--explore and batch mode are exclusive");
  }
  if (config->batch && config->batch_jobs.empty()) {
    config->batch_jobs.emplace_back(config->params.k, config->params.l);
  }
  if (config->simtcheck) {
    if (!config->serve && config->options.backend != core::ComputeBackend::kGpu) {
      return Status::InvalidArgument("--simtcheck requires --backend gpu");
    }
    if (!config->serve) config->options.gpu_sanitize = true;
  }
  return Status::OK();
}

namespace {

void PrintResult(const core::ProclusResult& result,
                 const data::Dataset& dataset, double wall_seconds,
                 std::ostream& out) {
  out << "iterations: " << result.stats.iterations
      << "  iterative cost: " << result.iterative_cost
      << "  refined cost: " << result.refined_cost << "\n";
  out << "wall time: " << wall_seconds * 1e3 << " ms";
  if (result.stats.modeled_gpu_seconds > 0.0) {
    out << "  (modeled device time: "
        << result.stats.modeled_gpu_seconds * 1e3 << " ms)";
  }
  out << "\n";
  out << eval::FormatClusterTable(eval::Digest(dataset.points, result));
  out << "outliers: " << result.NumOutliers() << "\n";
  if (result.stats.sanitizer_checked_accesses > 0) {
    out << "simtcheck: " << result.stats.sanitizer_checked_accesses
        << " accesses checked, " << result.stats.sanitizer_findings
        << " finding(s)\n";
  }
  if (dataset.has_ground_truth()) {
    out << "ARI vs labels: "
        << eval::AdjustedRandIndex(dataset.labels, result.assignment)
        << "\n";
  }
}

Status WriteAssignment(const std::vector<int>& assignment,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const int c : assignment) out << c << '\n';
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

// Writes the recorded trace to `path` and reports it. No-op without a
// recorder.
Status WriteTrace(const obs::TraceRecorder* trace, const std::string& path,
                  std::ostream& out) {
  if (trace == nullptr) return Status::OK();
  PROCLUS_RETURN_NOT_OK(trace->WriteFile(path));
  out << "trace written to " << path << " (" << trace->event_count()
      << " events)\n";
  return Status::OK();
}

// Batch mode: run the configured jobs through a ProclusService so they
// share the worker pool and persistent devices, then report per-job lines
// and the service's aggregate counters.
Status RunBatch(const CliConfig& config, const data::Dataset& dataset,
                obs::TraceRecorder* trace, std::ostream& out) {
  service::ServiceOptions service_options;
  service_options.num_workers = config.batch_workers;
  service_options.gpu_devices = config.batch_gpu_devices;
  service_options.default_timeout_seconds = config.batch_timeout_ms / 1e3;
  service_options.sanitize_devices |= config.simtcheck;
  service_options.trace = trace;
  service::ProclusService service(service_options);
  PROCLUS_RETURN_NOT_OK(service.RegisterDataset("cli", dataset.points));

  std::vector<core::ParamSetting> settings;
  settings.reserve(config.batch_jobs.size());
  for (const auto& [k, l] : config.batch_jobs) settings.push_back({k, l});

  std::vector<service::JobHandle> handles;
  if (config.batch_sweep) {
    service::JobSpec spec;
    spec.kind = service::JobKind::kSweep;
    spec.dataset_id = "cli";
    spec.params = config.params;
    spec.sweep = core::SweepSpec{settings, core::ReuseLevel::kWarmStart,
                                 config.batch_shards};
    spec.options = config.options;
    handles.resize(1);
    PROCLUS_RETURN_NOT_OK(service.Submit(std::move(spec), &handles[0]));
  } else {
    handles.resize(settings.size());
    for (size_t i = 0; i < settings.size(); ++i) {
      service::JobSpec spec;
      spec.dataset_id = "cli";
      spec.params = config.params;
      spec.params.k = settings[i].k;
      spec.params.l = settings[i].l;
      spec.options = config.options;
      PROCLUS_RETURN_NOT_OK(service.Submit(std::move(spec), &handles[i]));
    }
  }

  const core::ProclusResult* last_result = nullptr;
  Status first_failure = Status::OK();
  size_t setting_idx = 0;
  for (const service::JobHandle& handle : handles) {
    const service::JobResult& result = handle.Wait();
    if (!result.status.ok()) {
      out << "job " << handle.id() << ": " << service::JobPhaseName(
                 handle.phase())
          << " (" << result.status.ToString() << ")\n";
      for (const std::string& report : result.sanitizer_reports) {
        out << "  " << report << "\n";
      }
      if (first_failure.ok()) first_failure = result.status;
      setting_idx += config.batch_sweep ? settings.size() : 1;
      continue;
    }
    for (const core::ProclusResult& r : result.results) {
      out << "k=" << settings[setting_idx].k
          << " l=" << settings[setting_idx].l
          << "  refined cost: " << r.refined_cost
          << "  outliers: " << r.NumOutliers();
      if (result.warm_device) out << "  [warm device]";
      out << "\n";
      last_result = &r;
      ++setting_idx;
    }
  }

  const service::ServiceStats stats = service.stats();
  out << "batch: " << stats.completed << " completed, " << stats.failed
      << " failed, " << stats.timed_out << " timed out; device reuse "
      << stats.device_reuse_hits << "/" << stats.device_acquires;
  if (stats.sweep_shards_total > 0) {
    out << "; sweep shards " << stats.sweep_shards_total;
  }
  if (stats.modeled_gpu_seconds_total > 0.0) {
    out << "; modeled device time "
        << stats.modeled_gpu_seconds_total * 1e3 << " ms";
  }
  out << "\n";

  if (!config.output_path.empty() && last_result != nullptr) {
    PROCLUS_RETURN_NOT_OK(
        WriteAssignment(last_result->assignment, config.output_path));
    out << "assignment written to " << config.output_path << "\n";
  }
  PROCLUS_RETURN_NOT_OK(WriteTrace(trace, config.trace_out_path, out));
  return first_failure;
}

bool IsPdsPath(const std::string& path) {
  const std::string ext = store::kPdsExtension;
  return path.size() > ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

// Loads the configured input into `dataset`: --generate synthesizes (the
// same pipeline serve-mode registration uses), a .pds path reads the
// binary format, anything else parses as CSV. Normalization is the
// caller's business.
Status LoadInput(const CliConfig& config, data::Dataset* dataset) {
  *dataset = data::Dataset();
  if (config.generate) {
    data::GeneratorConfig gen;
    gen.n = config.gen_n;
    gen.d = config.gen_d;
    gen.num_clusters = config.gen_clusters;
    gen.subspace_dim = std::max(2, config.gen_d / 3);
    gen.seed = config.params.seed;
    return data::GenerateSubspaceData(gen, dataset);
  }
  if (IsPdsPath(config.input_path)) {
    if (config.input_has_labels) {
      return Status::InvalidArgument(
          ".pds files carry no labels; --labels applies to CSV input only");
    }
    return store::ReadPds(config.input_path, &dataset->points);
  }
  return data::ReadCsv(config.input_path, config.input_has_labels, dataset);
}

// Set by the SIGINT/SIGTERM handler serve mode installs; polled by the
// RunServe wait loop. sig_atomic_t is the only type a handler may touch.
volatile std::sig_atomic_t g_serve_stop_requested = 0;

void HandleServeStopSignal(int /*signum*/) { g_serve_stop_requested = 1; }

}  // namespace

Status RunServe(const CliConfig& config, std::ostream& out) {
  // Constructed before (so destroyed after) the service and server that
  // hold pointers into it.
  std::optional<net::FaultInjector> fault;
  if (!config.serve_fault_plan_path.empty()) {
    net::FaultPlan plan;
    PROCLUS_RETURN_NOT_OK(
        net::FaultPlan::FromFile(config.serve_fault_plan_path, &plan));
    fault.emplace(plan);
  }

  service::ServiceOptions service_options;
  service_options.num_workers = config.batch_workers;
  service_options.gpu_devices = config.batch_gpu_devices;
  service_options.queue_capacity = config.serve_queue_capacity;
  service_options.default_timeout_seconds = config.batch_timeout_ms / 1e3;
  service_options.sanitize_devices |= config.simtcheck;
  service_options.store_dir = config.store_dir;
  service_options.store_budget_bytes =
      config.store_budget_mb * (int64_t{1} << 20);
  service_options.result_cache_bytes =
      config.result_cache_mb * (int64_t{1} << 20);
  service_options.result_cache_dir = config.result_cache_dir;
  if (fault.has_value()) {
    service_options.device_fault_hook = fault->DeviceFaultHook();
  }
  service::ProclusService service(service_options);
  if (!config.store_dir.empty()) {
    out << "dataset store at " << config.store_dir;
    if (config.store_budget_mb > 0) {
      out << " (budget " << config.store_budget_mb << " MiB)";
    }
    out << "\n";
  }
  if (config.result_cache_mb > 0) {
    out << "result cache on (budget " << config.result_cache_mb << " MiB";
    if (!config.result_cache_dir.empty()) {
      out << ", spill to " << config.result_cache_dir;
    }
    out << ")\n";
  }

  if (config.generate || !config.input_path.empty()) {
    data::Dataset dataset;
    PROCLUS_RETURN_NOT_OK(LoadInput(config, &dataset));
    if (config.normalize) data::MinMaxNormalize(&dataset.points);
    const int64_t n = dataset.n();
    const int64_t d = dataset.d();
    PROCLUS_RETURN_NOT_OK(service.RegisterDataset(
        config.serve_dataset_id, std::move(dataset.points)));
    out << "registered dataset '" << config.serve_dataset_id << "' (" << n
        << " x " << d << ")\n";
  }

  net::ServerOptions server_options;
  server_options.host = config.serve_host;
  server_options.port = config.serve_port;
  server_options.max_connections = config.serve_max_connections;
  if (fault.has_value()) server_options.fault = &*fault;
  net::ProclusServer server(&service, server_options);
  PROCLUS_RETURN_NOT_OK(server.Start());
  if (fault.has_value()) {
    out << "fault injection enabled (seed " << fault->plan().seed << ", plan "
        << config.serve_fault_plan_path << ")\n";
  }
  // The smoke stage in tools/ci.sh greps this line for the bound port, so
  // it must come out before the process blocks.
  out << "serving on " << server.host() << ":" << server.port() << "\n"
      << std::flush;

  g_serve_stop_requested = 0;
  std::signal(SIGINT, HandleServeStopSignal);
  std::signal(SIGTERM, HandleServeStopSignal);
  while (g_serve_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  out << "stop requested; draining\n" << std::flush;
  server.Stop();
  service.Shutdown();
  const service::ServiceStats stats = service.stats();
  out << "drained: " << stats.submitted << " submitted, " << stats.completed
      << " completed, " << stats.failed << " failed, " << stats.cancelled
      << " cancelled, " << stats.timed_out << " timed out, "
      << stats.rejected << " rejected\n"
      << std::flush;
  if (fault.has_value()) {
    out << "faults injected: " << fault->injected_total() << "\n"
        << std::flush;
  }
  return Status::OK();
}

Status RunUpload(const CliConfig& config, std::ostream& out) {
  data::Dataset dataset;
  PROCLUS_RETURN_NOT_OK(LoadInput(config, &dataset));
  // Same default normalization as a run, so an uploaded dataset clusters
  // identically to `proclus_cli --input ...` on the same file.
  if (config.normalize) data::MinMaxNormalize(&dataset.points);
  net::ProclusClient client;
  PROCLUS_RETURN_NOT_OK(client.Connect(config.serve_host, config.serve_port));
  std::string hash;
  bool deduped = false;
  PROCLUS_RETURN_NOT_OK(client.UploadDataset(
      config.serve_dataset_id, dataset.points, /*chunk_bytes=*/0, &hash,
      &deduped));
  out << "uploaded '" << config.serve_dataset_id << "' (" << dataset.n()
      << " x " << dataset.d() << ", hash " << hash
      << (deduped ? ", deduplicated)" : ")") << "\n";
  return Status::OK();
}

Status RunConvert(const CliConfig& config, std::ostream& out) {
  data::Dataset dataset;
  PROCLUS_RETURN_NOT_OK(LoadInput(config, &dataset));
  PROCLUS_RETURN_NOT_OK(store::WritePds(dataset.points, config.output_path));
  out << "wrote " << dataset.n() << " x " << dataset.d() << " to "
      << config.output_path << "\n";
  return Status::OK();
}

Status RunCli(const CliConfig& config, std::ostream& out) {
  if (config.show_help) {
    out << UsageText();
    return Status::OK();
  }
  if (config.serve) return RunServe(config, out);
  if (config.upload) return RunUpload(config, out);
  if (config.convert) return RunConvert(config, out);

  data::Dataset dataset;
  PROCLUS_RETURN_NOT_OK(LoadInput(config, &dataset));
  if (config.generate) {
    out << "generated " << dataset.n() << " points, " << dataset.d()
        << " dims, " << config.gen_clusters << " clusters\n";
  } else {
    out << "loaded " << dataset.n() << " points, " << dataset.d()
        << " dims from " << config.input_path << "\n";
  }
  if (config.normalize) data::MinMaxNormalize(&dataset.points);

  out << "variant: "
      << core::VariantName(config.options.backend, config.options.strategy)
      << "\n";

  obs::TraceRecorder trace_recorder;
  obs::TraceRecorder* trace =
      config.trace_out_path.empty() ? nullptr : &trace_recorder;

  if (config.batch) return RunBatch(config, dataset, trace, out);

  if (config.explore) {
    const core::SweepSpec sweep = core::SweepSpec::Grid(
        config.params, dataset.points.cols(), core::ReuseLevel::kWarmStart);
    const std::vector<core::ParamSetting>& grid = sweep.settings;
    core::MultiParamOptions mp;
    mp.cluster = config.options;
    mp.cluster.trace = trace;
    core::MultiParamResult output;
    PROCLUS_RETURN_NOT_OK(core::RunMultiParam(dataset.points, config.params,
                                              sweep, mp, &output));
    out << "explored " << grid.size() << " settings in "
        << output.total_seconds * 1e3 << " ms\n";
    for (size_t i = 0; i < grid.size(); ++i) {
      out << "k=" << grid[i].k << " l=" << grid[i].l
          << "  refined cost: " << output.results[i].refined_cost
          << "  outliers: " << output.results[i].NumOutliers() << "\n";
    }
    if (!config.output_path.empty()) {
      // Write the assignment of the last setting.
      PROCLUS_RETURN_NOT_OK(WriteAssignment(
          output.results.back().assignment, config.output_path));
      out << "assignment written to " << config.output_path << "\n";
    }
    return WriteTrace(trace, config.trace_out_path, out);
  }

  StopWatch watch;
  core::ClusterOptions options = config.options;
  options.trace = trace;
  core::ProclusResult result;
  const Status run_status =
      core::Cluster(dataset.points, config.params, options, &result);
  if (!run_status.ok()) {
    // simtcheck failures carry the detailed violation reports; show them
    // before the non-zero exit.
    for (const std::string& report : result.stats.sanitizer_reports) {
      out << report << "\n";
    }
    return run_status;
  }
  PrintResult(result, dataset, watch.ElapsedSeconds(), out);
  if (!config.output_path.empty()) {
    PROCLUS_RETURN_NOT_OK(
        WriteAssignment(result.assignment, config.output_path));
    out << "assignment written to " << config.output_path << "\n";
  }
  return WriteTrace(trace, config.trace_out_path, out);
}

}  // namespace proclus::cli
