#include "cli/cli.h"

#include <charconv>
#include <fstream>

#include "common/timer.h"
#include "core/multi_param.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/normalize.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace proclus::cli {

namespace {

Status ParseInt(const std::string& value, const std::string& flag,
                int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), *out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Status::InvalidArgument("expected an integer for " + flag +
                                   ", got '" + value + "'");
  }
  return Status::OK();
}

Status ParseDouble(const std::string& value, const std::string& flag,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected a number for " + flag +
                                   ", got '" + value + "'");
  }
  return Status::OK();
}

}  // namespace

std::string UsageText() {
  return R"(proclus_cli - projected clustering with (GPU-FAST-)PROCLUS

Input (one required):
  --input FILE          headerless CSV of floats, one point per row
  --labels              the CSV's last column is an integer class label
  --generate N,D,C      synthesize N points, D dims, C subspace clusters

Algorithm:
  --k INT               number of clusters (default 10)
  --l INT               average dimensions per cluster (default 5)
  --A NUM --B NUM       sampling constants (default 100 / 10)
  --min-dev NUM         bad-medoid threshold (default 0.7)
  --itr-pat INT         patience (default 5)
  --seed INT            random seed (default 42)
  --backend NAME        cpu | mc | gpu (default gpu)
  --strategy NAME       baseline | fast | faststar (default fast)
  --threads INT         workers for mc (default: hardware)
  --explore             run the 9-combination (k,l) grid with full reuse

Output:
  --output FILE         write per-point cluster ids (-1 = outlier)
  --no-normalize        skip min-max normalization
  --help                this text
)";
}

Status ParseArgs(const std::vector<std::string>& args, CliConfig* config) {
  if (config == nullptr) {
    return Status::InvalidArgument("config must not be null");
  }
  *config = CliConfig();
  config->options.backend = core::ComputeBackend::kGpu;
  config->options.strategy = core::Strategy::kFast;

  auto next_value = [&args](size_t* i, const std::string& flag,
                            std::string* value) -> Status {
    if (*i + 1 >= args.size()) {
      return Status::InvalidArgument("missing value for " + flag);
    }
    *value = args[++*i];
    return Status::OK();
  };

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    int64_t int_value = 0;
    if (arg == "--help" || arg == "-h") {
      config->show_help = true;
      return Status::OK();
    } else if (arg == "--input") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->input_path));
    } else if (arg == "--labels") {
      config->input_has_labels = true;
    } else if (arg == "--generate") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      config->generate = true;
      const size_t c1 = value.find(',');
      const size_t c2 = value.find(',', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        return Status::InvalidArgument("--generate expects N,D,C");
      }
      int64_t d = 0;
      int64_t clusters = 0;
      PROCLUS_RETURN_NOT_OK(
          ParseInt(value.substr(0, c1), arg, &config->gen_n));
      PROCLUS_RETURN_NOT_OK(
          ParseInt(value.substr(c1 + 1, c2 - c1 - 1), arg, &d));
      PROCLUS_RETURN_NOT_OK(ParseInt(value.substr(c2 + 1), arg, &clusters));
      config->gen_d = static_cast<int>(d);
      config->gen_clusters = static_cast<int>(clusters);
    } else if (arg == "--k") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.k = static_cast<int>(int_value);
    } else if (arg == "--l") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.l = static_cast<int>(int_value);
    } else if (arg == "--A") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseDouble(value, arg, &config->params.a));
    } else if (arg == "--B") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseDouble(value, arg, &config->params.b));
    } else if (arg == "--min-dev") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(
          ParseDouble(value, arg, &config->params.min_dev));
    } else if (arg == "--itr-pat") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.itr_pat = static_cast<int>(int_value);
    } else if (arg == "--seed") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->params.seed = static_cast<uint64_t>(int_value);
    } else if (arg == "--backend") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      if (value == "cpu") {
        config->options.backend = core::ComputeBackend::kCpu;
      } else if (value == "mc") {
        config->options.backend = core::ComputeBackend::kMultiCore;
      } else if (value == "gpu") {
        config->options.backend = core::ComputeBackend::kGpu;
      } else {
        return Status::InvalidArgument("unknown backend: " + value);
      }
    } else if (arg == "--strategy") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      if (value == "baseline") {
        config->options.strategy = core::Strategy::kBaseline;
      } else if (value == "fast") {
        config->options.strategy = core::Strategy::kFast;
      } else if (value == "faststar") {
        config->options.strategy = core::Strategy::kFastStar;
      } else {
        return Status::InvalidArgument("unknown strategy: " + value);
      }
    } else if (arg == "--threads") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &value));
      PROCLUS_RETURN_NOT_OK(ParseInt(value, arg, &int_value));
      config->options.num_threads = static_cast<int>(int_value);
    } else if (arg == "--explore") {
      config->explore = true;
    } else if (arg == "--output") {
      PROCLUS_RETURN_NOT_OK(next_value(&i, arg, &config->output_path));
    } else if (arg == "--no-normalize") {
      config->normalize = false;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg +
                                     " (see --help)");
    }
  }
  if (config->input_path.empty() && !config->generate) {
    return Status::InvalidArgument(
        "either --input or --generate is required (see --help)");
  }
  if (!config->input_path.empty() && config->generate) {
    return Status::InvalidArgument("--input and --generate are exclusive");
  }
  return Status::OK();
}

namespace {

void PrintResult(const core::ProclusResult& result,
                 const data::Dataset& dataset, double wall_seconds,
                 std::ostream& out) {
  out << "iterations: " << result.stats.iterations
      << "  iterative cost: " << result.iterative_cost
      << "  refined cost: " << result.refined_cost << "\n";
  out << "wall time: " << wall_seconds * 1e3 << " ms";
  if (result.stats.modeled_gpu_seconds > 0.0) {
    out << "  (modeled device time: "
        << result.stats.modeled_gpu_seconds * 1e3 << " ms)";
  }
  out << "\n";
  out << eval::FormatClusterTable(eval::Digest(dataset.points, result));
  out << "outliers: " << result.NumOutliers() << "\n";
  if (dataset.has_ground_truth()) {
    out << "ARI vs labels: "
        << eval::AdjustedRandIndex(dataset.labels, result.assignment)
        << "\n";
  }
}

Status WriteAssignment(const std::vector<int>& assignment,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const int c : assignment) out << c << '\n';
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

Status RunCli(const CliConfig& config, std::ostream& out) {
  if (config.show_help) {
    out << UsageText();
    return Status::OK();
  }

  data::Dataset dataset;
  if (config.generate) {
    data::GeneratorConfig gen;
    gen.n = config.gen_n;
    gen.d = config.gen_d;
    gen.num_clusters = config.gen_clusters;
    gen.subspace_dim = std::max(2, config.gen_d / 3);
    gen.seed = config.params.seed;
    PROCLUS_RETURN_NOT_OK(data::GenerateSubspaceData(gen, &dataset));
    out << "generated " << dataset.n() << " points, " << dataset.d()
        << " dims, " << config.gen_clusters << " clusters\n";
  } else {
    PROCLUS_RETURN_NOT_OK(
        data::ReadCsv(config.input_path, config.input_has_labels, &dataset));
    out << "loaded " << dataset.n() << " points, " << dataset.d()
        << " dims from " << config.input_path << "\n";
  }
  if (config.normalize) data::MinMaxNormalize(&dataset.points);

  out << "variant: "
      << core::VariantName(config.options.backend, config.options.strategy)
      << "\n";

  if (config.explore) {
    const std::vector<core::ParamSetting> grid =
        core::DefaultSettingsGrid(config.params);
    core::MultiParamOptions mp;
    mp.cluster = config.options;
    mp.reuse = core::ReuseLevel::kWarmStart;
    core::MultiParamOutput output;
    PROCLUS_RETURN_NOT_OK(core::RunMultiParam(dataset.points, config.params,
                                              grid, mp, &output));
    out << "explored " << grid.size() << " settings in "
        << output.total_seconds * 1e3 << " ms\n";
    for (size_t i = 0; i < grid.size(); ++i) {
      out << "k=" << grid[i].k << " l=" << grid[i].l
          << "  refined cost: " << output.results[i].refined_cost
          << "  outliers: " << output.results[i].NumOutliers() << "\n";
    }
    if (!config.output_path.empty()) {
      // Write the assignment of the last setting.
      PROCLUS_RETURN_NOT_OK(WriteAssignment(
          output.results.back().assignment, config.output_path));
      out << "assignment written to " << config.output_path << "\n";
    }
    return Status::OK();
  }

  StopWatch watch;
  core::ProclusResult result;
  PROCLUS_RETURN_NOT_OK(
      core::Cluster(dataset.points, config.params, config.options, &result));
  PrintResult(result, dataset, watch.ElapsedSeconds(), out);
  if (!config.output_path.empty()) {
    PROCLUS_RETURN_NOT_OK(
        WriteAssignment(result.assignment, config.output_path));
    out << "assignment written to " << config.output_path << "\n";
  }
  return Status::OK();
}

}  // namespace proclus::cli
