#ifndef PROCLUS_NET_PROTOCOL_H_
#define PROCLUS_NET_PROTOCOL_H_

// The wire protocol of the serving layer (docs/serving.md is the message
// reference). Every frame payload (net/frame.h) is one JSON object. A
// request carries a "type" discriminator:
//
//   register_dataset — store a dataset server-side, either with inline
//                      row-major "values" or a server-side "generate" spec.
//                      Inline values ride as JSON doubles (~10x the binary
//                      size); encoding fails fast with a pointer at the
//                      chunked upload path once the frame would exceed
//                      kMaxFrameBytes. Small datasets only.
//   upload_begin     — open a chunked binary upload (id, rows, cols);
//                      returns a server-assigned session id
//   upload_chunk     — one payload chunk: a JSON header frame (session,
//                      byte offset, size) followed by ONE RAW frame of
//                      little-endian float32 payload bytes — the only
//                      non-JSON frame in the protocol. Chunks must arrive
//                      in order (offset == bytes received so far).
//   upload_commit    — finish the upload; the server verifies the declared
//                      CRC32 and registers the dataset (content-addressed,
//                      deduped). Response carries the content hash.
//   list_datasets    — enumerate stored datasets (shape, residency, pins)
//   evict_dataset    — drop a dataset from the store (fails while pinned)
//   evict_result     — drop one entry from the result cache by its
//                      cache_key (16 hex digits); no-op without a cache
//   submit_single    — one clustering run
//   submit_sweep     — a (k,l) multi-parameter sweep (§3.1/§5.3)
//   status           — poll a previously submitted async job
//   cancel           — cooperatively cancel an async job
//   metrics          — snapshot the server's net.*/service.*/store.*
//                      registry
//   health           — cheap liveness probe: queue depth, device-pool
//                      saturation, drain state, store pressure (no metrics
//                      payload)
//
// A response echoes the request type and reports either "ok":true with
// type-specific fields or "ok":false with an {"code","message",
// "retryable"} error object. Error codes are StatusCode names in
// SCREAMING_SNAKE ("RESOURCE_EXHAUSTED", ...); RESOURCE_EXHAUSTED is the
// retryable backpressure signal (queue full / connection budget spent) —
// the server sheds load instead of buffering it.
//
// The same codec runs on both ends (the server decodes requests the
// client encoded and vice versa), so the two cannot drift apart.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/api.h"
#include "core/multi_param.h"
#include "core/params.h"
#include "core/result.h"
#include "data/matrix.h"
#include "service/job.h"

namespace proclus::net {

// --- wire error codes --------------------------------------------------------

// StatusCode <-> wire name ("INVALID_ARGUMENT", ...). Unknown names decode
// to kInternal.
const char* WireCodeName(StatusCode code);
StatusCode WireCodeFromName(const std::string& name);

// Retryable errors: the request was fine, the server was momentarily out
// of capacity — back off and resend. Everything else is a terminal answer.
bool IsRetryableCode(StatusCode code);

struct Request;

// True when resending `request` after a transport error cannot change
// server state beyond what a single send could: every request type except
// an async (wait=false) submit, whose ack can be lost after the job was
// already enqueued. Wait-mode submits are safe because the server cancels
// the orphaned job on disconnect and clustering is a pure function of
// (dataset, params, options). RetryPolicy consults this before resending
// over a fresh connection.
bool IsIdempotentRequest(const Request& request);

// --- requests ----------------------------------------------------------------

enum class RequestType {
  kRegisterDataset,
  kUploadBegin,
  kUploadChunk,
  kUploadCommit,
  kListDatasets,
  kEvictDataset,
  kEvictResult,
  kSubmitSingle,
  kSubmitSweep,
  kStatus,
  kCancel,
  kMetrics,
  kHealth,
};

const char* RequestTypeName(RequestType type);

// Server-side dataset synthesis (register_dataset without shipping the
// values): the server runs the same generator + min-max normalization the
// CLI uses, so client and server can agree on a dataset by spec alone.
struct GenerateSpec {
  int64_t n = 4000;
  int d = 12;
  int clusters = 5;
  uint64_t seed = 7;
  bool normalize = true;
};

// One decoded request; `type` says which fields are meaningful.
struct Request {
  RequestType type = RequestType::kMetrics;

  // register_dataset: the id plus exactly one of inline data / generate.
  // submit_*: the id of a previously registered dataset.
  std::string dataset_id;
  bool has_inline_data = false;
  data::Matrix inline_data;
  bool has_generate = false;
  GenerateSpec generate;

  // submit_*.
  core::ProclusParams params;
  core::ClusterOptions options;  // backend/strategy/threads/gpu knobs only
  service::JobPriority priority = service::JobPriority::kBulk;
  double timeout_ms = 0.0;  // deadline from submission (queue + exec); 0 = server default
  // true: the response is sent when the job finishes (results inline).
  // false: the response acks with the job id; poll with status.
  bool wait = true;

  // submit_sweep: the one sweep request shape shared with core and the
  // service (settings, reuse level, max_shards; core::SweepSpec).
  core::SweepSpec sweep;

  // status / cancel.
  uint64_t job_id = 0;
  bool include_result = true;  // status: ship results when terminal

  // upload_begin: dataset_id + the payload shape.
  int64_t upload_rows = 0;
  int64_t upload_cols = 0;
  // upload_chunk / upload_commit: the session id upload_begin returned.
  uint64_t upload_session = 0;
  // upload_chunk: byte offset of this chunk within the payload, and the raw
  // little-endian float32 bytes. The bytes do NOT appear in the JSON header
  // — EncodeRequest encodes their size, and the sender ships them as the
  // immediately following raw frame (ProclusClient::Call and the server's
  // connection loop both special-case this).
  int64_t upload_offset = 0;
  std::string chunk_payload;
  // Decode side: the chunk size the JSON header declared; the receiver
  // checks the raw frame that follows is exactly this long before touching
  // the session.
  int64_t chunk_declared_bytes = 0;
  // upload_commit: CRC32 (IEEE) of the complete payload.
  uint32_t upload_crc32 = 0;

  // evict_result: the cache key to drop (16 hex digits, as reported in a
  // result's cache_key field).
  std::string cache_key;
};

Status EncodeRequest(const Request& request, std::string* out);
Status DecodeRequest(const std::string& payload, Request* out);

// --- responses ---------------------------------------------------------------

struct WireError {
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool retryable = false;

  // Converts back to a Status (for client callers).
  Status ToStatus() const;
  static WireError FromStatus(const Status& status);
};

// Job outcome crossing the wire: the clustering(s) plus the scheduling
// figures a client cares about. Everything needed for bit-identical
// comparison against an in-process run is included.
struct WireJobResult {
  // kSingle: one entry; kSweep: one per setting, in input order.
  std::vector<core::ProclusResult> results;
  std::vector<double> setting_seconds;
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  double modeled_gpu_seconds = 0.0;
  bool warm_device = false;
  // simtcheck (sanitizing servers only): findings attributed to this job,
  // accesses the checker validated (> 0 proves checked execution), and the
  // detailed violation reports. A job with findings fails, so reports
  // normally travel inside an error-bearing status response.
  int64_t sanitizer_findings = 0;
  int64_t sanitizer_checked_accesses = 0;
  std::vector<std::string> sanitizer_reports;
  // Sweeps: device lanes the sweep scheduler ran on (1 = serial; 0 for
  // single jobs).
  int sweep_shards = 0;
  // Result-cache provenance (servers with --result-cache-mb): true when the
  // result was served from the cache (or by joining an identical in-flight
  // job) instead of executing, plus the request's 16-hex-digit content
  // address — the handle evict_result takes. Defaults when caching is off.
  bool cache_hit = false;
  std::string cache_key;
};

// One stored dataset as reported by list_datasets (store::DatasetInfo on
// the wire; the hash travels as 16 hex digits).
struct WireDatasetInfo {
  std::string id;
  std::string hash;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t bytes = 0;
  bool resident = false;
  bool pinned = false;
};

// Health snapshot: enough for a client (or a load balancer probe) to see
// how loaded and how alive the server is without the full metrics dump.
struct WireHealth {
  int64_t queue_depth = 0;       // jobs waiting in the service queue
  int64_t queue_capacity = 0;    // the queue's admission bound
  int active_connections = 0;
  int max_connections = 0;
  int devices_total = 0;
  int devices_leased = 0;        // pool saturation: leased == total is full
  bool draining = false;         // Stop() in progress: finish up and go away
  int64_t faults_injected_total = 0;  // 0 unless serving with --fault-plan
  // Dataset-store pressure: datasets held, payload bytes resident, datasets
  // spilled out of memory so far, and total bytes ingested via the chunked
  // upload path (store.* metrics in docs/observability.md).
  int64_t store_datasets = 0;
  int64_t store_resident_bytes = 0;
  int64_t store_evictions = 0;
  int64_t store_upload_bytes_total = 0;
  // Result-cache effectiveness (service.cache.* metrics; all zero when the
  // server runs without --result-cache-mb).
  int64_t cache_entries = 0;
  int64_t cache_bytes = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_inserts = 0;
  int64_t cache_evictions = 0;
  int64_t cache_dedup_joins = 0;
};

struct Response {
  RequestType request = RequestType::kMetrics;  // echoed request type
  bool ok = false;
  WireError error;  // valid when !ok

  uint64_t job_id = 0;      // submit_* and status
  std::string phase;        // status + completed submits (JobPhaseName)
  bool has_result = false;  // completed submits / terminal status
  WireJobResult result;

  // metrics: the registry snapshot object
  // ({"counters":{...},"gauges":{...},"histograms":{...}}).
  json::JsonValue metrics;

  // health.
  bool has_health = false;
  WireHealth health;

  // upload_begin: the session id to pass with every chunk and the commit.
  uint64_t upload_session = 0;
  // upload_commit: content hash (16 hex digits) and whether the store
  // already held identical content (deduplicated ingest).
  std::string dataset_hash;
  bool deduped = false;

  // list_datasets.
  bool has_datasets = false;
  std::vector<WireDatasetInfo> datasets;

  // evict_result: whether an entry (in memory or spilled) was dropped.
  bool evicted = false;
};

Status EncodeResponse(const Response& response, std::string* out);
Status DecodeResponse(const std::string& payload, Response* out);

}  // namespace proclus::net

#endif  // PROCLUS_NET_PROTOCOL_H_
