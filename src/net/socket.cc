#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace proclus::net {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// poll() that retries EINTR with the *remaining* timeout instead of
// surfacing the interruption: a signal delivered mid-wait (profilers,
// child reapers, the CLI's own stop handler) must not turn a healthy
// request into a spurious DeadlineExceeded. Semantics match poll():
// > 0 ready, 0 timed out, < 0 non-EINTR failure (errno preserved).
// A negative `timeout_ms` waits forever, like poll().
int PollRetryingEintr(struct pollfd* pfd, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                              : timeout_ms);
  int remaining_ms = timeout_ms;
  for (;;) {
    const int rc = ::poll(pfd, 1, remaining_ms);
    if (rc >= 0 || errno != EINTR) return rc;
    if (timeout_ms < 0) continue;  // infinite wait: just retry
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return 0;  // budget spent: report a timeout
    remaining_ms = static_cast<int>(left.count());
  }
}

// "localhost" and dotted quads; everything the loopback stack needs.
Status ResolveIpv4(const std::string& host, in_addr* out) {
  const std::string effective = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, effective.c_str(), out) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const void* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  const char* cursor = static_cast<const char*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd_, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("send failed"));
    }
    cursor += sent;
    remaining -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  char* cursor = static_cast<char*>(data);
  size_t received = 0;
  while (received < len) {
    const ssize_t n = ::recv(fd_, cursor + received, len - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("recv failed"));
    }
    if (n == 0) {
      if (received == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IoError("connection closed by peer");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::WaitReadable(int timeout_ms) const {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = PollRetryingEintr(&pfd, timeout_ms);
  if (rc < 0) return Status::IoError(ErrnoMessage("poll failed"));
  if (rc == 0) return Status::DeadlineExceeded("socket not readable");
  // POLLHUP/POLLERR also count as readable: the next recv reports the
  // EOF/reset, which is how callers should observe it.
  return Status::OK();
}

bool Socket::PeerClosed() const {
  if (fd_ < 0) return true;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) {
    // EINTR is transient and must not kill the connection, but any other
    // poll failure on an open handle (EBADF and friends) means the fd is
    // not watchable anymore — report closed, or wait-mode
    // cancel-on-disconnect would spin forever on a dead descriptor.
    return errno != EINTR;
  }
  if (rc == 0) return false;
  if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return true;
  if ((pfd.revents & (POLLIN | POLLHUP)) != 0) {
    // Readable: EOF or data. Peek without consuming to tell them apart.
    char byte = 0;
    const ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;                        // orderly shutdown
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return true;                                  // reset
    }
  }
  return false;
}

Status Connect(const std::string& host, int port, Socket* socket) {
  if (socket == nullptr) {
    return Status::InvalidArgument("socket must not be null");
  }
  *socket = Socket();
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  PROCLUS_RETURN_NOT_OK(ResolveIpv4(host, &addr.sin_addr));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket failed"));
  Socket pending(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::IoError("connect to " + host + ":" +
                           std::to_string(port) + " failed: " +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *socket = std::move(pending);
  return Status::OK();
}

Status Listener::Bind(const std::string& host, int port, int backlog) {
  Close();
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  PROCLUS_RETURN_NOT_OK(ResolveIpv4(host, &addr.sin_addr));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket failed"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(
        "bind to " + host + ":" + std::to_string(port) + " failed: " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) < 0) {
    const Status status = Status::IoError(ErrnoMessage("listen failed"));
    ::close(fd);
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const Status status = Status::IoError(ErrnoMessage("getsockname failed"));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return Status::OK();
}

Status Listener::Accept(int timeout_ms, Socket* socket) {
  if (socket == nullptr) {
    return Status::InvalidArgument("socket must not be null");
  }
  *socket = Socket();
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = PollRetryingEintr(&pfd, timeout_ms);
  if (rc < 0) return Status::IoError(ErrnoMessage("poll failed"));
  if (rc == 0) return Status::DeadlineExceeded("no pending connection");
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("connection vanished before accept");
    }
    return Status::IoError(ErrnoMessage("accept failed"));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *socket = Socket(fd);
  return Status::OK();
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

}  // namespace proclus::net
