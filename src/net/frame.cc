#include "net/frame.h"

#include <array>

namespace proclus::net {

Status WriteFrame(Socket* socket, const std::string& payload) {
  if (socket == nullptr) {
    return Status::InvalidArgument("socket must not be null");
  }
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload exceeds kMaxFrameBytes: " +
        std::to_string(payload.size()));
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const std::array<unsigned char, 4> header = {
      static_cast<unsigned char>((len >> 24) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>(len & 0xff)};
  PROCLUS_RETURN_NOT_OK(socket->SendAll(header.data(), header.size()));
  return socket->SendAll(payload.data(), payload.size());
}

Status ReadFrame(Socket* socket, std::string* payload, bool* clean_close) {
  if (clean_close != nullptr) *clean_close = false;
  if (socket == nullptr || payload == nullptr) {
    return Status::InvalidArgument("socket/payload must not be null");
  }
  payload->clear();
  std::array<unsigned char, 4> header;
  const Status header_status =
      socket->RecvAll(header.data(), header.size(), clean_close);
  if (!header_status.ok()) {
    // A clean close between frames keeps RecvAll's message (and the
    // clean_close marker); a connection torn inside the header is a
    // truncated frame like any other.
    if (clean_close != nullptr && *clean_close) return header_status;
    return Status::IoError("truncated frame: header incomplete (" +
                           header_status.message() + ")");
  }
  const uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                       (static_cast<uint32_t>(header[1]) << 16) |
                       (static_cast<uint32_t>(header[2]) << 8) |
                       static_cast<uint32_t>(header[3]);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length exceeds kMaxFrameBytes: " +
                                   std::to_string(len));
  }
  if (len == 0) return Status::OK();
  payload->resize(len);
  const Status body_status = socket->RecvAll(payload->data(), len);
  if (!body_status.ok()) {
    // Never hand back a resized-but-partially-filled payload: callers that
    // ignore the status must not observe zero-filled garbage.
    payload->clear();
    return Status::IoError("truncated frame: payload incomplete (" +
                           body_status.message() + ")");
  }
  return Status::OK();
}

}  // namespace proclus::net
