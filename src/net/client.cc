#include "net/client.h"

#include <utility>

#include "net/frame.h"

namespace proclus::net {

Status ProclusClient::Connect(const std::string& host, int port) {
  Close();
  return net::Connect(host, port, &socket_);
}

Status ProclusClient::Call(const Request& request, Response* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("response must not be null");
  }
  *response = Response();
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  std::string payload;
  PROCLUS_RETURN_NOT_OK(EncodeRequest(request, &payload));
  PROCLUS_RETURN_NOT_OK(WriteFrame(&socket_, payload));
  bool clean_close = false;
  const Status read = ReadFrame(&socket_, &payload, &clean_close);
  if (!read.ok()) {
    if (clean_close) {
      return Status::IoError("server closed the connection before replying");
    }
    return read;
  }
  return DecodeResponse(payload, response);
}

Status ProclusClient::CallChecked(const Request& request,
                                  Response* response) {
  PROCLUS_RETURN_NOT_OK(Call(request, response));
  if (!response->ok) return response->error.ToStatus();
  return Status::OK();
}

Status ProclusClient::RegisterDataset(const std::string& id,
                                      const data::Matrix& points) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.dataset_id = id;
  request.has_inline_data = true;
  request.inline_data = points;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::RegisterGenerated(const std::string& id,
                                        const GenerateSpec& spec) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.dataset_id = id;
  request.has_generate = true;
  request.generate = spec;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::SubmitSingle(const Request& request,
                                   WireJobResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must not be null");
  }
  if (request.type != RequestType::kSubmitSingle || !request.wait) {
    return Status::InvalidArgument(
        "SubmitSingle needs a wait-mode submit_single request");
  }
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (!response.has_result) {
    return Status::Internal("server reported ok without a result");
  }
  *result = std::move(response.result);
  return Status::OK();
}

Status ProclusClient::SubmitSweep(const Request& request,
                                  WireJobResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must not be null");
  }
  if (request.type != RequestType::kSubmitSweep || !request.wait) {
    return Status::InvalidArgument(
        "SubmitSweep needs a wait-mode submit_sweep request");
  }
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (!response.has_result) {
    return Status::Internal("server reported ok without a result");
  }
  *result = std::move(response.result);
  return Status::OK();
}

Status ProclusClient::SubmitAsync(const Request& request, uint64_t* job_id) {
  if (job_id == nullptr) {
    return Status::InvalidArgument("job_id must not be null");
  }
  if ((request.type != RequestType::kSubmitSingle &&
       request.type != RequestType::kSubmitSweep) ||
      request.wait) {
    return Status::InvalidArgument(
        "SubmitAsync needs a submit_* request with wait == false");
  }
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  *job_id = response.job_id;
  return Status::OK();
}

Status ProclusClient::GetStatus(uint64_t job_id, bool include_result,
                                Response* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("response must not be null");
  }
  Request request;
  request.type = RequestType::kStatus;
  request.job_id = job_id;
  request.include_result = include_result;
  // A terminal-failed job answers ok=false with the job's status; that is
  // an answer, not a transport problem, so return the raw Call result.
  return Call(request, response);
}

Status ProclusClient::Cancel(uint64_t job_id) {
  Request request;
  request.type = RequestType::kCancel;
  request.job_id = job_id;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::FetchMetrics(json::JsonValue* metrics) {
  if (metrics == nullptr) {
    return Status::InvalidArgument("metrics must not be null");
  }
  Request request;
  request.type = RequestType::kMetrics;
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  *metrics = std::move(response.metrics);
  return Status::OK();
}

}  // namespace proclus::net
