#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/frame.h"
#include "store/pds_format.h"

namespace proclus::net {

Status ProclusClient::Connect(const std::string& host, int port) {
  Close();
  // Remembered even when the connect fails: CallWithRetry may still be
  // able to reach the server on a later attempt (e.g. an injected
  // connection refusal).
  host_ = host;
  port_ = port;
  return net::Connect(host, port, &socket_);
}

Status ProclusClient::Call(const Request& request, Response* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("response must not be null");
  }
  *response = Response();
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  std::string payload;
  PROCLUS_RETURN_NOT_OK(EncodeRequest(request, &payload));
  PROCLUS_RETURN_NOT_OK(WriteFrame(&socket_, payload));
  if (request.type == RequestType::kUploadChunk) {
    // The chunk's payload bytes travel as a second, raw frame right behind
    // the JSON header (see protocol.h).
    PROCLUS_RETURN_NOT_OK(WriteFrame(&socket_, request.chunk_payload));
  }
  bool clean_close = false;
  const Status read = ReadFrame(&socket_, &payload, &clean_close);
  if (!read.ok()) {
    if (clean_close) {
      return Status::IoError("server closed the connection before replying");
    }
    return read;
  }
  return DecodeResponse(payload, response);
}

Status ProclusClient::set_retry_policy(const RetryPolicy& policy) {
  PROCLUS_RETURN_NOT_OK(policy.Validate());
  retry_policy_ = policy;
  return Status::OK();
}

Status ProclusClient::CallWithRetry(const Request& request,
                                    Response* response) {
  if (!retry_policy_.enabled()) return Call(request, response);
  if (response == nullptr) {
    return Status::InvalidArgument("response must not be null");
  }
  if (!socket_.valid() && host_.empty()) {
    return Status::FailedPrecondition("client is not connected");
  }
  BackoffSchedule backoff(retry_policy_, ++call_sequence_);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  for (int attempt = 0;; ++attempt) {
    Status failure;
    // True when the server delivered a full (retryable-error) response:
    // a give-up then mirrors Call and returns OK with that response.
    bool answered = false;
    if (!socket_.valid()) {
      const Status reconnect = net::Connect(host_, port_, &socket_);
      if (!reconnect.ok()) {
        // Nothing reached the wire, so retrying is safe for every request
        // type, idempotent or not.
        failure = reconnect;
      } else if (attempt > 0) {
        ++retry_stats_.reconnects;
      }
    }
    if (socket_.valid() && failure.ok()) {
      ++retry_stats_.attempts;
      const Status status = Call(request, response);
      if (status.ok()) {
        if (response->ok || !IsRetryableCode(response->error.code)) {
          return Status::OK();  // terminal answer, Call's contract applies
        }
        answered = true;
        failure = response->error.ToStatus();
      } else {
        // Transport error mid-call: the request/response alternation is
        // torn, so the connection is useless — drop it. Resending is only
        // safe when a duplicate execution is harmless.
        Close();
        if (!IsIdempotentRequest(request)) {
          ++retry_stats_.give_ups;
          return status;
        }
        failure = status;
      }
    }
    if (attempt >= retry_policy_.max_retries) {
      ++retry_stats_.give_ups;
      return answered ? Status::OK() : failure;
    }
    const double sleep_ms = backoff.NextMs();
    if (retry_policy_.budget_ms > 0.0 &&
        elapsed_ms() + sleep_ms > retry_policy_.budget_ms) {
      ++retry_stats_.give_ups;
      return answered ? Status::OK() : failure;
    }
    ++retry_stats_.retries;
    retry_stats_.backoff_ms_total += sleep_ms;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
}

Status ProclusClient::CallChecked(const Request& request,
                                  Response* response) {
  PROCLUS_RETURN_NOT_OK(CallWithRetry(request, response));
  if (!response->ok) return response->error.ToStatus();
  return Status::OK();
}

Status ProclusClient::RegisterDataset(const std::string& id,
                                      const data::Matrix& points) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.dataset_id = id;
  request.has_inline_data = true;
  request.inline_data = points;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::RegisterGenerated(const std::string& id,
                                        const GenerateSpec& spec) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.dataset_id = id;
  request.has_generate = true;
  request.generate = spec;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::UploadDataset(const std::string& id,
                                    const data::Matrix& points,
                                    int64_t chunk_bytes, std::string* hash,
                                    bool* deduped) {
  if (points.empty()) {
    return Status::InvalidArgument("dataset must not be empty");
  }
  constexpr int64_t kDefaultChunkBytes = 4 << 20;
  if (chunk_bytes <= 0) chunk_bytes = kDefaultChunkBytes;
  chunk_bytes -= chunk_bytes % 4;  // whole float32 values per chunk
  chunk_bytes = std::min<int64_t>(
      chunk_bytes, static_cast<int64_t>(kMaxFrameBytes) - 4096);
  if (chunk_bytes < 4) {
    return Status::InvalidArgument("chunk_bytes must allow >= 4 bytes");
  }

  Request begin;
  begin.type = RequestType::kUploadBegin;
  begin.dataset_id = id;
  begin.upload_rows = points.rows();
  begin.upload_cols = points.cols();
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(begin, &response));
  if (response.upload_session == 0) {
    return Status::Internal("upload_begin returned no session id");
  }
  const uint64_t session = response.upload_session;

  // The wire format is little-endian float32, which is the in-memory
  // layout on every platform this codebase targets — chunks are straight
  // byte spans of the matrix payload.
  const auto* bytes = reinterpret_cast<const char*>(points.data());
  const int64_t total_bytes = points.size() * 4;
  for (int64_t offset = 0; offset < total_bytes; offset += chunk_bytes) {
    Request chunk;
    chunk.type = RequestType::kUploadChunk;
    chunk.upload_session = session;
    chunk.upload_offset = offset;
    chunk.chunk_payload.assign(
        bytes + offset,
        static_cast<size_t>(std::min(chunk_bytes, total_bytes - offset)));
    PROCLUS_RETURN_NOT_OK(CallChecked(chunk, &response));
  }

  Request commit;
  commit.type = RequestType::kUploadCommit;
  commit.upload_session = session;
  commit.upload_crc32 =
      store::Crc32(points.data(), static_cast<size_t>(total_bytes));
  PROCLUS_RETURN_NOT_OK(CallChecked(commit, &response));
  if (hash != nullptr) *hash = response.dataset_hash;
  if (deduped != nullptr) *deduped = response.deduped;
  return Status::OK();
}

Status ProclusClient::ListDatasets(std::vector<WireDatasetInfo>* datasets) {
  if (datasets == nullptr) {
    return Status::InvalidArgument("datasets must not be null");
  }
  Request request;
  request.type = RequestType::kListDatasets;
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (!response.has_datasets) {
    return Status::Internal("server reported ok without a datasets array");
  }
  *datasets = std::move(response.datasets);
  return Status::OK();
}

Status ProclusClient::EvictDataset(const std::string& id) {
  Request request;
  request.type = RequestType::kEvictDataset;
  request.dataset_id = id;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::EvictResult(const std::string& cache_key,
                                  bool* evicted) {
  Request request;
  request.type = RequestType::kEvictResult;
  request.cache_key = cache_key;
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (evicted != nullptr) *evicted = response.evicted;
  return Status::OK();
}

Status ProclusClient::SubmitSingle(const Request& request,
                                   WireJobResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must not be null");
  }
  if (request.type != RequestType::kSubmitSingle || !request.wait) {
    return Status::InvalidArgument(
        "SubmitSingle needs a wait-mode submit_single request");
  }
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (!response.has_result) {
    return Status::Internal("server reported ok without a result");
  }
  *result = std::move(response.result);
  return Status::OK();
}

Status ProclusClient::SubmitSweep(const Request& request,
                                  WireJobResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must not be null");
  }
  if (request.type != RequestType::kSubmitSweep || !request.wait) {
    return Status::InvalidArgument(
        "SubmitSweep needs a wait-mode submit_sweep request");
  }
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (!response.has_result) {
    return Status::Internal("server reported ok without a result");
  }
  *result = std::move(response.result);
  return Status::OK();
}

Status ProclusClient::SubmitAsync(const Request& request, uint64_t* job_id) {
  if (job_id == nullptr) {
    return Status::InvalidArgument("job_id must not be null");
  }
  if ((request.type != RequestType::kSubmitSingle &&
       request.type != RequestType::kSubmitSweep) ||
      request.wait) {
    return Status::InvalidArgument(
        "SubmitAsync needs a submit_* request with wait == false");
  }
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  *job_id = response.job_id;
  return Status::OK();
}

Status ProclusClient::GetStatus(uint64_t job_id, bool include_result,
                                Response* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("response must not be null");
  }
  Request request;
  request.type = RequestType::kStatus;
  request.job_id = job_id;
  request.include_result = include_result;
  // A terminal-failed job answers ok=false with the job's status; that is
  // an answer, not a transport problem, so return the raw call result.
  return CallWithRetry(request, response);
}

Status ProclusClient::Cancel(uint64_t job_id) {
  Request request;
  request.type = RequestType::kCancel;
  request.job_id = job_id;
  Response response;
  return CallChecked(request, &response);
}

Status ProclusClient::FetchMetrics(json::JsonValue* metrics) {
  if (metrics == nullptr) {
    return Status::InvalidArgument("metrics must not be null");
  }
  Request request;
  request.type = RequestType::kMetrics;
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  *metrics = std::move(response.metrics);
  return Status::OK();
}

Status ProclusClient::FetchHealth(WireHealth* health) {
  if (health == nullptr) {
    return Status::InvalidArgument("health must not be null");
  }
  Request request;
  request.type = RequestType::kHealth;
  Response response;
  PROCLUS_RETURN_NOT_OK(CallChecked(request, &response));
  if (!response.has_health) {
    return Status::Internal("server reported ok without a health object");
  }
  *health = response.health;
  return Status::OK();
}

}  // namespace proclus::net
