#ifndef PROCLUS_NET_LOADGEN_H_
#define PROCLUS_NET_LOADGEN_H_

// Open-loop load generator for ProclusServer (the multi-user exploration
// scenario of §5.3, driven over the wire). Arrivals are scheduled on a
// fixed clock — request i is *due* at start + i/rps — and worker
// connections pull the next due arrival from a shared counter, so a slow
// server does not slow the offered load down (open loop, not closed
// loop). Latency is measured from the due time, which charges queueing
// delay caused by an overloaded server to the server, not to the
// generator.
//
// Backpressure is respected, not retried by default: a retryable
// RESOURCE_EXHAUSTED answer counts as `rejected` and the arrival is
// dropped, mirroring how a well-behaved interactive client sheds its own
// refresh. With a RetryPolicy configured (`retry`), workers instead ride
// out transient failures — transport errors and retryable rejections —
// through ProclusClient::CallWithRetry, which is how the chaos smoke
// drives a fault-injecting server to zero failed arrivals.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/api.h"
#include "core/multi_param.h"
#include "core/params.h"
#include "net/protocol.h"
#include "net/retry.h"

namespace proclus::net {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;

  // Worker connections; each holds one blocking ProclusClient.
  int connections = 4;
  // Offered arrival rate (shared across connections) and run length.
  double rps = 20.0;
  double duration_seconds = 2.0;

  // Traffic mix: fraction of arrivals submitted as interactive (the rest
  // are bulk), and fraction submitted as (k,l) sweeps (the rest are
  // singles). Decided per arrival index, deterministically from `seed`.
  double interactive_fraction = 0.5;
  double sweep_fraction = 0.0;
  uint64_t seed = 1;

  // Result-cache traffic shaping (servers with --result-cache-mb). 0 keeps
  // every arrival identical (the historical mix). > 0 gives each arrival a
  // distinct clustering seed — so each has a distinct cache key — and then
  // makes this fraction of arrivals deterministically resubmit the key of
  // an earlier arrival instead. Repeats are decided per arrival index from
  // `seed`, so a fixed configuration offers the same key sequence every
  // run. The report separates hit and miss latencies (a hit is what the
  // server said: WireJobResult::cache_hit).
  double repeat_fraction = 0.0;

  // Dataset: registered server-side (by spec) before traffic starts.
  bool register_dataset = true;
  std::string dataset_id = "loadgen";
  GenerateSpec generate;
  // Ship the dataset through the chunked binary upload path instead of the
  // register-by-spec shortcut: the generator runs client-side (same
  // generator + normalization as the server's, so results stay
  // bit-identical either way) and streams the payload with
  // ProclusClient::UploadDataset. Exercises the store's ingest path under
  // load; the report then shows store.* pressure.
  bool upload_dataset = false;

  // Per-request clustering work. `sweep` is the request shape sweep
  // arrivals submit (settings, reuse level, max_shards — the shard budget
  // forwarded to the server's sweep scheduler).
  core::ProclusParams params;
  core::ClusterOptions options = core::ClusterOptions::Gpu();
  core::SweepSpec sweep = {{{8, 4}, {10, 5}},
                           core::ReuseLevel::kWarmStart,
                           /*max_shards=*/0};
  // Per-request deadline in ms (0 = server default).
  double timeout_ms = 0.0;

  // Fetch the server's metrics snapshot after the run.
  bool fetch_metrics = true;

  // Retry policy for every client the generator opens (workers, dataset
  // registration, metrics fetch). Disabled by default (max_retries = 0):
  // one attempt per arrival, failures counted as they land.
  RetryPolicy retry;
};

struct LoadgenReport {
  int64_t offered = 0;    // arrivals that became requests
  int64_t completed = 0;  // ok responses
  int64_t rejected = 0;   // retryable RESOURCE_EXHAUSTED answers
  int64_t failed = 0;     // non-retryable errors (job or request level)
  int64_t transport_errors = 0;
  // Retry traffic summed over the worker clients (0 with retries off).
  int64_t retries = 0;
  int64_t reconnects = 0;
  int64_t retry_give_ups = 0;
  double wall_seconds = 0.0;
  // Completions the server answered from its result cache (or by joining
  // an in-flight identical job); always 0 against a cacheless server.
  int64_t cache_hits = 0;
  // Due-time latency of every completed request, unsorted. The hit/miss
  // vectors partition it by WireJobResult::cache_hit (both empty when the
  // server reports no cache activity at all).
  std::vector<double> latencies_seconds;
  std::vector<double> hit_latencies_seconds;
  std::vector<double> miss_latencies_seconds;
  // Server-side registry snapshot ("net.*" + "service.*"), when fetched.
  json::JsonValue server_metrics;

  // p in [0, 100]; 0 when nothing completed.
  double LatencyPercentile(double p) const;
};

// Percentile over an arbitrary latency sample (p in [0, 100]; 0 on empty) —
// the same nearest-rank rule LatencyPercentile uses, exposed so callers can
// summarize the hit/miss partitions.
double PercentileOf(const std::vector<double>& samples, double p);

// Runs the configured load and fills `*report`. Returns non-OK only when
// the run could not start (bad options, dataset registration failed, no
// connection could be established) — per-request failures are counted in
// the report instead.
Status RunLoadgen(const LoadgenOptions& options, LoadgenReport* report);

// Human-readable summary: counts, achieved rps, latency percentiles, and
// a few server-side metrics when present.
void PrintReport(const LoadgenReport& report, std::ostream& out);

}  // namespace proclus::net

#endif  // PROCLUS_NET_LOADGEN_H_
