#include "net/fault.h"

#include <array>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "net/frame.h"

namespace proclus::net {

namespace {

// splitmix64, the repo's stateless mixer (net/loadgen.cc uses the same
// construction): decision i of kind s is a pure function of (seed, s, i).
uint64_t Mix(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t seed, uint64_t stream, uint64_t index) {
  return static_cast<double>(Mix(seed ^ (stream * 0x5851f42d4c957f2dull),
                                 index) >>
                             11) /
         static_cast<double>(1ull << 53);
}

Status ValidateProbability(const char* name, double p) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string("fault plan: ") + name +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

std::array<unsigned char, 4> FrameHeader(uint32_t len) {
  return {static_cast<unsigned char>((len >> 24) & 0xff),
          static_cast<unsigned char>((len >> 16) & 0xff),
          static_cast<unsigned char>((len >> 8) & 0xff),
          static_cast<unsigned char>(len & 0xff)};
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRefuseConnection: return "refuse_connection";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCloseMidFrame: return "close_mid_frame";
    case FaultKind::kTruncatePayload: return "truncate_payload";
    case FaultKind::kCorruptLength: return "corrupt_length";
    case FaultKind::kDeviceFailure: return "device_failure";
  }
  return "?";
}

double FaultPlan::Probability(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kRefuseConnection: return refuse_connection;
    case FaultKind::kDelay: return delay;
    case FaultKind::kCloseMidFrame: return close_mid_frame;
    case FaultKind::kTruncatePayload: return truncate_payload;
    case FaultKind::kCorruptLength: return corrupt_length;
    case FaultKind::kDeviceFailure: return device_failure;
  }
  return 0.0;
}

Status FaultPlan::Validate() const {
  PROCLUS_RETURN_NOT_OK(
      ValidateProbability("refuse_connection", refuse_connection));
  PROCLUS_RETURN_NOT_OK(ValidateProbability("delay", delay));
  PROCLUS_RETURN_NOT_OK(
      ValidateProbability("close_mid_frame", close_mid_frame));
  PROCLUS_RETURN_NOT_OK(
      ValidateProbability("truncate_payload", truncate_payload));
  PROCLUS_RETURN_NOT_OK(ValidateProbability("corrupt_length", corrupt_length));
  PROCLUS_RETURN_NOT_OK(ValidateProbability("device_failure", device_failure));
  if (delay_ms < 0) {
    return Status::InvalidArgument("fault plan: delay ms must be >= 0");
  }
  return Status::OK();
}

Status FaultPlan::FromJson(const json::JsonValue& v, FaultPlan* plan) {
  if (plan == nullptr) {
    return Status::InvalidArgument("plan must not be null");
  }
  *plan = FaultPlan();
  if (!v.is_object()) {
    return Status::InvalidArgument("fault plan must be a JSON object");
  }
  for (const auto& [key, value] : v.object_value) {
    if (key == "seed") {
      plan->seed = static_cast<uint64_t>(value.AsInt(1));
    } else if (key == "refuse_connection") {
      plan->refuse_connection = value.AsDouble();
    } else if (key == "delay") {
      // Either a bare probability or {"probability": P, "ms": N}.
      if (value.is_object()) {
        for (const auto& [dkey, dvalue] : value.object_value) {
          if (dkey == "probability") {
            plan->delay = dvalue.AsDouble();
          } else if (dkey == "ms") {
            plan->delay_ms = static_cast<int>(dvalue.AsInt(plan->delay_ms));
          } else {
            return Status::InvalidArgument(
                "fault plan: unknown delay key: " + dkey);
          }
        }
      } else {
        plan->delay = value.AsDouble();
      }
    } else if (key == "close_mid_frame") {
      plan->close_mid_frame = value.AsDouble();
    } else if (key == "truncate_payload") {
      plan->truncate_payload = value.AsDouble();
    } else if (key == "corrupt_length") {
      plan->corrupt_length = value.AsDouble();
    } else if (key == "device_failure") {
      plan->device_failure = value.AsDouble();
    } else {
      return Status::InvalidArgument("fault plan: unknown key: " + key);
    }
  }
  return plan->Validate();
}

Status FaultPlan::FromFile(const std::string& path, FaultPlan* plan) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open fault plan: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  json::JsonValue v;
  std::string error;
  if (!json::Parse(contents.str(), &v, &error)) {
    return Status::InvalidArgument("fault plan " + path +
                                   " is not valid JSON: " + error);
  }
  return FromJson(v, plan);
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    draws_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::Should(FaultKind kind) {
  const double p = plan_.Probability(kind);
  const auto index = static_cast<size_t>(kind);
  // The draw counter is advanced even for disabled kinds so enabling a
  // kind never shifts another kind's stream.
  const int64_t draw =
      draws_[index].fetch_add(1, std::memory_order_relaxed);
  if (p <= 0.0) return false;
  const bool fire =
      UnitUniform(plan_.seed, static_cast<uint64_t>(kind) + 1,
                  static_cast<uint64_t>(draw)) < p;
  if (fire) injected_[index].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

int64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
}

int64_t FaultInjector::injected_total() const {
  int64_t total = 0;
  for (const std::atomic<int64_t>& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::PublishMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->gauge("net.faults_injected_total")
      ->Set(static_cast<double>(injected_total()));
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    const int64_t count = injected(kind);
    if (count > 0) {
      registry->gauge(std::string("net.faults.") + FaultKindName(kind))
          ->Set(static_cast<double>(count));
    }
  }
}

std::function<Status()> FaultInjector::DeviceFaultHook() {
  return [this]() -> Status {
    if (Should(FaultKind::kDeviceFailure)) {
      // Retryable on purpose: a flaky device looks like momentary capacity
      // loss, and resubmitting the (idempotent, deterministic) job is the
      // correct recovery.
      return Status::ResourceExhausted("injected device failure");
    }
    return Status::OK();
  };
}

Status WriteFrameWithFaults(Socket* socket, const std::string& payload,
                            FaultInjector* injector) {
  if (injector == nullptr) return WriteFrame(socket, payload);
  if (socket == nullptr) {
    return Status::InvalidArgument("socket must not be null");
  }
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload exceeds kMaxFrameBytes: " +
        std::to_string(payload.size()));
  }
  if (injector->Should(FaultKind::kDelay)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(injector->delay_ms()));
  }
  const auto len = static_cast<uint32_t>(payload.size());
  if (injector->Should(FaultKind::kCorruptLength)) {
    // A header claiming more than kMaxFrameBytes: the reader must reject
    // the frame outright instead of trying to allocate it.
    const std::array<unsigned char, 4> header =
        FrameHeader(kMaxFrameBytes + 1u);
    // The injected fault IS the torn write; the peer may bail at any byte.
    IgnoreError(socket->SendAll(header.data(), header.size()));
    socket->Close();
    return Status::IoError("injected fault: corrupt length header");
  }
  if (injector->Should(FaultKind::kCloseMidFrame)) {
    // Half a header, then gone — the reader sees a torn header.
    const std::array<unsigned char, 4> header = FrameHeader(len);
    IgnoreError(socket->SendAll(header.data(), 2));
    socket->Close();
    return Status::IoError("injected fault: close mid-frame");
  }
  if (injector->Should(FaultKind::kTruncatePayload) && len > 0) {
    // Intact header, half the payload — the reader sees a truncated
    // payload and must not keep the partial bytes.
    const std::array<unsigned char, 4> header = FrameHeader(len);
    IgnoreError(socket->SendAll(header.data(), header.size()));
    IgnoreError(socket->SendAll(payload.data(), len / 2));
    socket->Close();
    return Status::IoError("injected fault: truncated payload");
  }
  return WriteFrame(socket, payload);
}

}  // namespace proclus::net
