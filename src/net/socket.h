#ifndef PROCLUS_NET_SOCKET_H_
#define PROCLUS_NET_SOCKET_H_

// Thin RAII layer over POSIX TCP sockets, just enough for the serving
// stack: blocking connect/accept/send/recv with Status-based errors, a
// poll-based readability wait (used to slice blocking reads so server
// threads can observe a stop flag), and peer-close detection (used for
// cancel-on-disconnect while a job runs). Loopback-oriented; no TLS, no
// non-blocking I/O.

#include <cstddef>
#include <string>

#include "common/status.h"

namespace proclus::net {

// Owning wrapper of a connected socket fd. Move-only.
class Socket {
 public:
  Socket() = default;
  // Takes ownership of `fd` (must be a connected stream socket, or -1).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Sends exactly `len` bytes (no SIGPIPE). IoError on failure.
  Status SendAll(const void* data, size_t len);

  // Receives exactly `len` bytes. On failure returns IoError; when the
  // peer closed cleanly before the first byte, `*clean_eof` (optional) is
  // set true so framed readers can tell "connection ended between frames"
  // from a torn frame.
  Status RecvAll(void* data, size_t len, bool* clean_eof = nullptr);

  // Waits up to `timeout_ms` for the socket to become readable. OK when
  // readable (data or EOF pending), DeadlineExceeded on timeout, IoError
  // on poll failure. Signals that interrupt the wait are retried with the
  // remaining timeout — EINTR never surfaces as a timeout or error.
  Status WaitReadable(int timeout_ms) const;

  // True when the peer has hung up: pending EOF/reset with no data left.
  // Does not consume buffered data; a socket with unread payload reports
  // false. A non-EINTR poll failure (the fd is no longer watchable, e.g.
  // EBADF/POLLNVAL) also reports closed, so disconnect watchers cannot
  // spin forever on a dead handle. Used to abort server-side job waits
  // when the client vanishes.
  bool PeerClosed() const;

 private:
  int fd_ = -1;
};

// Opens a blocking TCP connection to host:port (IPv4 dotted quad or
// "localhost"). Fills `*socket` on OK.
Status Connect(const std::string& host, int port, Socket* socket);

// Listening TCP socket. Bind, then Accept in a loop; Accept takes a
// timeout so the accept loop can poll a stop flag between attempts.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens on host:port. Port 0 picks an ephemeral port; the
  // chosen one is available from port() afterwards.
  Status Bind(const std::string& host, int port, int backlog = 64);

  bool listening() const { return fd_ >= 0; }
  int port() const { return port_; }

  // Waits up to `timeout_ms` for a connection and accepts it.
  // DeadlineExceeded when none arrived, FailedPrecondition when not
  // listening, IoError otherwise.
  Status Accept(int timeout_ms, Socket* socket);

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace proclus::net

#endif  // PROCLUS_NET_SOCKET_H_
