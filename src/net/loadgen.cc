#include "net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/generator.h"
#include "data/normalize.h"
#include "net/client.h"

namespace proclus::net {

namespace {

using Clock = std::chrono::steady_clock;

// splitmix64: cheap, stateless per-arrival randomness so the traffic mix
// is reproducible for a fixed seed regardless of thread interleaving.
uint64_t Mix(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t seed, uint64_t index, uint64_t stream) {
  return static_cast<double>(Mix(seed ^ (stream * 0x5851f42d4c957f2dull),
                                 index) >>
                             11) /
         static_cast<double>(1ull << 53);
}

struct SharedCounters {
  std::atomic<int64_t> next_arrival{0};
  std::atomic<int64_t> offered{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> transport_errors{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> reconnects{0};
  std::atomic<int64_t> retry_give_ups{0};
  std::atomic<int64_t> cache_hits{0};
  Mutex latencies_mutex;
  std::vector<double> latencies GUARDED_BY(latencies_mutex);
  std::vector<double> hit_latencies GUARDED_BY(latencies_mutex);
  std::vector<double> miss_latencies GUARDED_BY(latencies_mutex);
};

// Whether arrival `index` resubmits an earlier arrival's key.
bool IsRepeat(const LoadgenOptions& options, uint64_t index) {
  return options.repeat_fraction > 0.0 && index > 0 &&
         UnitUniform(options.seed, index, 3) < options.repeat_fraction;
}

// The arrival whose cache key arrival `index` carries. A non-repeat
// arrival is its own key; a repeat walks to a uniformly chosen earlier
// arrival (which may itself repeat — the walk strictly decreases, so it
// terminates at some original). Pure function of (options, index): every
// worker, and every rerun with the same configuration, agrees on the key
// sequence without shared state.
uint64_t KeyIndex(const LoadgenOptions& options, uint64_t index) {
  while (IsRepeat(options, index)) {
    index = Mix(options.seed ^ 0xda942042e4dd58b5ull, index) % index;
  }
  return index;
}

void WorkerLoop(const LoadgenOptions& options, Clock::time_point start,
                Clock::time_point end, SharedCounters* counters) {
  ProclusClient client;
  // RunLoadgen validated options.retry before spawning workers, so this
  // cannot fail; WorkerLoop returns void and has nowhere to send it anyway.
  IgnoreError(client.set_retry_policy(options.retry));
  if (!client.Connect(options.host, options.port).ok()) {
    counters->transport_errors.fetch_add(1, std::memory_order_relaxed);
    // With retries the client can still reach the server later (e.g. an
    // injected refusal): CallWithRetry reconnects per attempt. Without
    // them, a worker with no connection has nothing to do.
    if (!options.retry.enabled()) return;
  }
  const double interval_seconds =
      options.rps > 0.0 ? 1.0 / options.rps : 0.0;

  for (;;) {
    const int64_t index =
        counters->next_arrival.fetch_add(1, std::memory_order_relaxed);
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(index * interval_seconds));
    if (due >= end) break;
    std::this_thread::sleep_until(due);
    counters->offered.fetch_add(1, std::memory_order_relaxed);

    const uint64_t i = static_cast<uint64_t>(index);
    const bool interactive =
        UnitUniform(options.seed, i, 1) < options.interactive_fraction;
    // With repeats on, the request shape (sweep vs single, clustering seed)
    // is derived from the key index, so a repeat is bit-for-bit the request
    // it repeats. Priority stays per-arrival — it does not shape the key.
    const uint64_t key_index =
        options.repeat_fraction > 0.0 ? KeyIndex(options, i) : i;
    const bool sweep =
        UnitUniform(options.seed, key_index, 2) < options.sweep_fraction;

    Request request;
    request.type =
        sweep ? RequestType::kSubmitSweep : RequestType::kSubmitSingle;
    request.dataset_id = options.dataset_id;
    request.params = options.params;
    request.options = options.options;
    if (options.repeat_fraction > 0.0) {
      // Distinct cache key per original arrival: perturb the clustering
      // seed (any seed is as good as another for load purposes).
      request.params.seed = options.params.seed + key_index;
    }
    request.priority = interactive ? service::JobPriority::kInteractive
                                   : service::JobPriority::kBulk;
    request.timeout_ms = options.timeout_ms;
    request.wait = true;
    if (sweep) {
      request.sweep = options.sweep;
    }

    Response response;
    const Status status = client.CallWithRetry(request, &response);
    if (!status.ok()) {
      counters->transport_errors.fetch_add(1, std::memory_order_relaxed);
      // The connection is likely dead (server stopping, peer reset);
      // reconnect once and carry on — a generator should outlive blips.
      if (!client.Connect(options.host, options.port).ok() &&
          !options.retry.enabled()) {
        break;
      }
      continue;
    }
    if (!response.ok) {
      if (response.error.retryable) {
        counters->rejected.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters->failed.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    const double latency =
        std::chrono::duration<double>(Clock::now() - due).count();
    counters->completed.fetch_add(1, std::memory_order_relaxed);
    const bool cache_hit = response.has_result && response.result.cache_hit;
    if (cache_hit) {
      counters->cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    {
      MutexLock lock(&counters->latencies_mutex);
      counters->latencies.push_back(latency);
      (cache_hit ? counters->hit_latencies : counters->miss_latencies)
          .push_back(latency);
    }
  }
  const RetryStats& stats = client.retry_stats();
  counters->retries.fetch_add(stats.retries, std::memory_order_relaxed);
  counters->reconnects.fetch_add(stats.reconnects,
                                 std::memory_order_relaxed);
  counters->retry_give_ups.fetch_add(stats.give_ups,
                                     std::memory_order_relaxed);
}

}  // namespace

double PercentileOf(const std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const auto rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double LoadgenReport::LatencyPercentile(double p) const {
  return PercentileOf(latencies_seconds, p);
}

Status RunLoadgen(const LoadgenOptions& options, LoadgenReport* report) {
  if (report == nullptr) {
    return Status::InvalidArgument("report must not be null");
  }
  *report = LoadgenReport();
  if (options.connections < 1) {
    return Status::InvalidArgument("connections must be >= 1");
  }
  if (options.rps <= 0.0) {
    return Status::InvalidArgument("rps must be > 0");
  }
  if (options.duration_seconds <= 0.0) {
    return Status::InvalidArgument("duration_seconds must be > 0");
  }
  if (options.repeat_fraction < 0.0 || options.repeat_fraction > 1.0) {
    return Status::InvalidArgument("repeat_fraction must be in [0, 1]");
  }
  PROCLUS_RETURN_NOT_OK(options.retry.Validate());

  if (options.register_dataset) {
    ProclusClient setup;
    PROCLUS_RETURN_NOT_OK(setup.set_retry_policy(options.retry));
    const Status connected = setup.Connect(options.host, options.port);
    // A failed first connect is recoverable when retries are on —
    // registration below reconnects per attempt.
    if (!connected.ok() && !options.retry.enabled()) return connected;
    if (options.upload_dataset) {
      // Build the dataset locally — the same generator + normalization the
      // server's register-by-spec path runs — and stream it through the
      // chunked binary ingest.
      data::GeneratorConfig config;
      config.n = options.generate.n;
      config.d = options.generate.d;
      config.num_clusters = options.generate.clusters;
      config.subspace_dim = std::max(2, options.generate.d / 3);
      config.seed = options.generate.seed;
      data::Dataset dataset;
      PROCLUS_RETURN_NOT_OK(data::GenerateSubspaceData(config, &dataset));
      if (options.generate.normalize) {
        data::MinMaxNormalize(&dataset.points);
      }
      PROCLUS_RETURN_NOT_OK(
          setup.UploadDataset(options.dataset_id, dataset.points));
    } else {
      PROCLUS_RETURN_NOT_OK(
          setup.RegisterGenerated(options.dataset_id, options.generate));
    }
  }

  SharedCounters counters;
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.connections));
  for (int i = 0; i < options.connections; ++i) {
    workers.emplace_back(
        [&options, start, end, &counters] {
          WorkerLoop(options, start, end, &counters);
        });
  }
  for (std::thread& worker : workers) worker.join();
  report->wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  report->offered = counters.offered.load();
  report->completed = counters.completed.load();
  report->rejected = counters.rejected.load();
  report->failed = counters.failed.load();
  report->transport_errors = counters.transport_errors.load();
  report->retries = counters.retries.load();
  report->reconnects = counters.reconnects.load();
  report->retry_give_ups = counters.retry_give_ups.load();
  report->cache_hits = counters.cache_hits.load();
  {
    // Workers are joined; the lock is uncontended and keeps the guarded
    // access visible to the capability analysis.
    MutexLock lock(&counters.latencies_mutex);
    report->latencies_seconds = std::move(counters.latencies);
    report->hit_latencies_seconds = std::move(counters.hit_latencies);
    report->miss_latencies_seconds = std::move(counters.miss_latencies);
  }

  if (options.fetch_metrics) {
    ProclusClient metrics_client;
    PROCLUS_RETURN_NOT_OK(metrics_client.set_retry_policy(options.retry));
    if (metrics_client.Connect(options.host, options.port).ok() ||
        options.retry.enabled()) {
      // Best-effort: a stopped server just leaves the snapshot empty.
      IgnoreError(metrics_client.FetchMetrics(&report->server_metrics));
    }
  }
  return Status::OK();
}

void PrintReport(const LoadgenReport& report, std::ostream& out) {
  out << "offered " << report.offered << ", completed " << report.completed
      << ", rejected " << report.rejected << ", failed " << report.failed
      << ", transport_errors " << report.transport_errors << "\n";
  if (report.retries > 0 || report.reconnects > 0 ||
      report.retry_give_ups > 0) {
    out << "retries " << report.retries << ", reconnects "
        << report.reconnects << ", retry_give_ups " << report.retry_give_ups
        << "\n";
  }
  if (report.wall_seconds > 0.0) {
    out << "achieved "
        << static_cast<double>(report.completed) / report.wall_seconds
        << " completions/s over " << report.wall_seconds << " s\n";
  }
  if (!report.latencies_seconds.empty()) {
    out << "latency p50 " << report.LatencyPercentile(50.0) << " s, p90 "
        << report.LatencyPercentile(90.0) << " s, p99 "
        << report.LatencyPercentile(99.0) << " s, max "
        << report.LatencyPercentile(100.0) << " s\n";
  }
  if (report.cache_hits > 0 && report.completed > 0) {
    out << "cache hits " << report.cache_hits << "/" << report.completed
        << " (rate "
        << static_cast<double>(report.cache_hits) /
               static_cast<double>(report.completed)
        << ")\n";
    if (!report.hit_latencies_seconds.empty()) {
      out << "hit latency p50 "
          << PercentileOf(report.hit_latencies_seconds, 50.0) << " s, p90 "
          << PercentileOf(report.hit_latencies_seconds, 90.0) << " s, p99 "
          << PercentileOf(report.hit_latencies_seconds, 99.0) << " s\n";
    }
    if (!report.miss_latencies_seconds.empty()) {
      out << "miss latency p50 "
          << PercentileOf(report.miss_latencies_seconds, 50.0) << " s, p90 "
          << PercentileOf(report.miss_latencies_seconds, 90.0) << " s, p99 "
          << PercentileOf(report.miss_latencies_seconds, 99.0) << " s\n";
    }
  }
  if (report.server_metrics.is_object()) {
    const json::JsonValue* counters =
        report.server_metrics.Find("counters");
    const json::JsonValue* gauges = report.server_metrics.Find("gauges");
    out << "server:";
    bool any = false;
    auto emit = [&](const char* name, const json::JsonValue* table) {
      if (table == nullptr || !table->is_object()) return;
      if (const json::JsonValue* v = table->Find(name)) {
        out << " " << name << "=" << json::Dump(*v);
        any = true;
      }
    };
    emit("net.requests", counters);
    emit("net.resource_exhausted", counters);
    emit("net.disconnect_cancels", counters);
    emit("net.connections_refused", counters);
    emit("net.faults_injected_total", gauges);
    emit("service.submitted", gauges);
    emit("service.completed", gauges);
    emit("service.rejected", gauges);
    emit("service.failed", gauges);
    emit("service.cancelled", gauges);
    emit("service.timed_out", gauges);
    emit("service.sweep_shards_total", gauges);
    emit("service.datasets_resident_bytes", gauges);
    emit("service.cache.hits", counters);
    emit("service.cache.misses", counters);
    emit("service.cache.dedup_joins", counters);
    emit("service.cache.entries", gauges);
    emit("store.upload_bytes_total", counters);
    emit("store.evictions", counters);
    emit("store.dedup_hits", counters);
    emit("store.resident_bytes", gauges);
    if (!any) out << " (no metrics)";
    out << "\n";
  }
}

}  // namespace proclus::net
