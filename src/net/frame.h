#ifndef PROCLUS_NET_FRAME_H_
#define PROCLUS_NET_FRAME_H_

// Wire framing: every protocol message travels as one frame —
//
//   [4-byte big-endian payload length][payload bytes]
//
// — where the payload is a JSON document (net/protocol.h). The length
// prefix makes message boundaries explicit on the stream, so reader and
// writer never depend on JSON self-termination. Frames above
// kMaxFrameBytes are rejected on both ends (a malformed or hostile peer
// cannot make the server allocate unbounded memory).

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/socket.h"

namespace proclus::net {

// Upper bound on a frame payload (64 MiB — a ~1.5M-point inline dataset).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Sends `payload` as one length-prefixed frame.
Status WriteFrame(Socket* socket, const std::string& payload);

// Receives one frame into `*payload`. When the peer closed the connection
// cleanly on a frame boundary, returns IoError with `*clean_close`
// (optional) set true; a torn frame or transport error leaves it false
// and returns a distinct "truncated frame" IoError. On any failure
// `*payload` is left empty — callers never observe a resized buffer with
// partially received bytes.
Status ReadFrame(Socket* socket, std::string* payload,
                 bool* clean_close = nullptr);

}  // namespace proclus::net

#endif  // PROCLUS_NET_FRAME_H_
