#ifndef PROCLUS_NET_FAULT_H_
#define PROCLUS_NET_FAULT_H_

// Deterministic fault injection for the serving path. A FaultPlan gives
// each fault kind an independent firing probability; a FaultInjector draws
// decisions from a seeded splitmix64 stream *per kind*, so for a fixed
// seed the n-th decision of every kind is the same across runs regardless
// of thread interleaving — chaos tests replay the exact same fault
// sequence every time. The injector is hooked into ProclusServer's accept
// and response-write paths (`proclus_cli serve --fault-plan FILE`) and,
// via ServiceOptions::device_fault_hook, into DevicePool acquisition:
//
//   refuse_connection — an accepted connection is closed immediately
//   delay             — the response is written delay.ms late
//   close_mid_frame   — the connection closes inside the response header
//   truncate_payload  — full header, partial payload, then close
//   corrupt_length    — the length header claims > kMaxFrameBytes
//   device_failure    — device acquisition fails with a retryable
//                       RESOURCE_EXHAUSTED, failing the job
//
// Everything a fault destroys is visible to a well-behaved client as
// either a transport error (reconnect + resend an idempotent request) or
// a retryable application error — which is exactly what RetryPolicy
// (net/retry.h) recovers from. docs/serving.md has the plan file format.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace proclus::net {

enum class FaultKind {
  kRefuseConnection = 0,
  kDelay,
  kCloseMidFrame,
  kTruncatePayload,
  kCorruptLength,
  kDeviceFailure,
};

inline constexpr int kNumFaultKinds = 6;

// Stable lowercase token, also the metric suffix ("net.faults.<name>").
const char* FaultKindName(FaultKind kind);

// Per-operation fault probabilities, all in [0, 1]; 0 disables a kind.
struct FaultPlan {
  uint64_t seed = 1;
  double refuse_connection = 0.0;
  double delay = 0.0;
  int delay_ms = 10;  // how late a delayed response is written
  double close_mid_frame = 0.0;
  double truncate_payload = 0.0;
  double corrupt_length = 0.0;
  double device_failure = 0.0;

  Status Validate() const;
  // Decodes {"seed":N,"refuse_connection":P,"delay":{"probability":P,
  // "ms":N},"close_mid_frame":P,...}. Unknown keys are rejected (a typoed
  // fault name silently injecting nothing would defeat the chaos test).
  static Status FromJson(const json::JsonValue& v, FaultPlan* plan);
  static Status FromFile(const std::string& path, FaultPlan* plan);

  double Probability(FaultKind kind) const;
};

// Thread-safe decision source + counters. Should() advances the kind's
// decision stream by one draw and reports whether that operation faults.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // True when the current operation of `kind` must fault. Deterministic
  // per kind: the i-th call for a kind always answers the same for a
  // fixed seed.
  bool Should(FaultKind kind);

  const FaultPlan& plan() const { return plan_; }
  int delay_ms() const { return plan_.delay_ms; }

  // Fired-fault counters (draws that answered true).
  int64_t injected(FaultKind kind) const;
  int64_t injected_total() const;

  // Publishes "net.faults_injected_total" plus one
  // "net.faults.<kind>" gauge per kind that fired.
  void PublishMetrics(obs::MetricsRegistry* registry) const;

  // Device-failure hook for ServiceOptions::device_fault_hook: answers a
  // retryable ResourceExhausted when the device_failure draw fires. The
  // injector must outlive the service holding the hook.
  std::function<Status()> DeviceFaultHook();

 private:
  const FaultPlan plan_;
  std::array<std::atomic<int64_t>, kNumFaultKinds> draws_;
  std::array<std::atomic<int64_t>, kNumFaultKinds> injected_;
};

// Server-side response write with faults applied: delay sleeps before the
// write; corrupt_length / close_mid_frame / truncate_payload each wreck
// the frame in their own way and close the socket. Returns OK only when
// an intact frame was written; a fault (or a real transport error)
// returns IoError and the caller must drop the connection. With a null
// injector this is exactly WriteFrame.
Status WriteFrameWithFaults(Socket* socket, const std::string& payload,
                            FaultInjector* injector);

}  // namespace proclus::net

#endif  // PROCLUS_NET_FAULT_H_
