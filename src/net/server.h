#ifndef PROCLUS_NET_SERVER_H_
#define PROCLUS_NET_SERVER_H_

// ProclusServer: a thread-per-connection TCP front end over a
// ProclusService. Admission control is explicit at both layers:
//
//   * connections beyond `max_connections` are not queued — the first
//     request on an over-budget connection gets a retryable
//     RESOURCE_EXHAUSTED response and the connection is closed;
//   * submits that hit the service's bounded queue surface the service's
//     ResourceExhausted verbatim (also retryable) — the server never
//     buffers jobs on the service's behalf.
//
// Wait-mode submits hold the connection until the job finishes; while
// waiting, the server watches the socket and cancels the job if the peer
// disconnects (an analyst closing a console must not leave work running,
// §5.3). Stop() stops accepting work but drains in-flight jobs: every
// accepted wait-mode request still gets its response before the
// connection closes.
//
// The server publishes "net.*" counters/gauges into its metrics registry
// alongside the service's "service.*" gauges; the `metrics` request
// returns a snapshot of both (docs/observability.md).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/fault.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "service/job.h"
#include "service/proclus_service.h"
#include "store/dataset_store.h"

namespace proclus::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  // Connection budget: the bound on concurrently served connections.
  int max_connections = 32;
  // Optional fault injector (not owned; must outlive the server). When
  // set, accepted connections may be refused and response writes may be
  // delayed/torn per the injector's plan — see net/fault.h.
  FaultInjector* fault = nullptr;
};

class ProclusServer {
 public:
  // `service` must outlive the server and already be constructed; the
  // server does not own it (tests run in-process submits against the same
  // instance to assert bit-identical results).
  ProclusServer(service::ProclusService* service, ServerOptions options = {});
  ~ProclusServer();

  ProclusServer(const ProclusServer&) = delete;
  ProclusServer& operator=(const ProclusServer&) = delete;

  // Binds and starts the accept thread. Returns IoError when the port
  // cannot be bound, FailedPrecondition when already started.
  Status Start();

  // Graceful stop: closes the listener, stops reading new requests, drains
  // in-flight wait-mode jobs (their responses are still written), joins
  // every connection thread. Idempotent; called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (after Start()).
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  // The server's registry ("net.*" plus, on snapshot, "service.*").
  obs::MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
    // Chunked uploads opened on this connection that have not committed.
    // Only the connection's own thread touches the map; a connection that
    // dies mid-upload aborts its sessions so the staging buffers free.
    std::unordered_map<uint64_t, std::shared_ptr<store::UploadSession>>
        uploads;
  };

  void AcceptLoop() EXCLUDES(connections_mutex_);
  void ServeConnection(Connection* connection);
  // One request -> one response. Returns false when the connection should
  // close (peer gone or transport error).
  bool HandleRequest(Connection* connection, const std::string& payload);
  Response Dispatch(Connection* connection, const Request& request,
                    bool* peer_lost);

  Response HandleRegisterDataset(const Request& request);
  Response HandleUploadBegin(Connection* connection, const Request& request);
  Response HandleUploadChunk(Connection* connection, const Request& request);
  Response HandleUploadCommit(Connection* connection, const Request& request);
  Response HandleListDatasets();
  Response HandleEvictDataset(const Request& request);
  Response HandleEvictResult(const Request& request);
  Response HandleSubmit(Connection* connection, const Request& request,
                        bool* peer_lost);
  Response HandleStatus(const Request& request);
  Response HandleCancel(const Request& request);
  Response HandleMetrics();
  Response HandleHealth();

  // Sheds an over-budget connection: answer its first request with a
  // retryable RESOURCE_EXHAUSTED and close.
  void ShedConnection(Socket socket);
  void ReapFinishedConnections() EXCLUDES(connections_mutex_);

  service::ProclusService* const service_;
  const ServerOptions options_;

  Listener listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Guards only the connection list (add/reap/join bookkeeping); a
  // Connection's own thread serves its socket without this lock.
  Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      GUARDED_BY(connections_mutex_);

  // Async (wait=false) jobs, pollable via status/cancel from any
  // connection; they intentionally survive the submitting connection.
  // Leaf lock: held only around map lookups/inserts, never across a
  // Submit/Wait/Cancel call into the service.
  Mutex jobs_mutex_;
  std::unordered_map<uint64_t, service::JobHandle> async_jobs_
      GUARDED_BY(jobs_mutex_);

  std::atomic<uint64_t> next_upload_session_{1};

  obs::MetricsRegistry metrics_;
};

}  // namespace proclus::net

#endif  // PROCLUS_NET_SERVER_H_
