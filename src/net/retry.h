#ifndef PROCLUS_NET_RETRY_H_
#define PROCLUS_NET_RETRY_H_

// Client-side retry with exponential backoff and decorrelated jitter.
// A RetryPolicy bounds the attempts (count and, optionally, wall time);
// a BackoffSchedule turns the policy into a deterministic sleep sequence
// (seeded splitmix64, one stream per logical call) so tests replay the
// exact same backoff every run. ProclusClient::CallWithRetry consumes
// both — see net/client.h for what is and is not resent.
//
// Only retryable failures are retried:
//   * transport errors (connect refused, torn/truncated frame, connection
//     closed before the reply) — for idempotent requests only
//     (IsRetryableCode / IsIdempotentRequest, net/protocol.h);
//   * application errors the server marked retryable (RESOURCE_EXHAUSTED
//     backpressure).
// Everything else is a terminal answer and comes back on the first try.

#include <cstdint>

#include "common/status.h"

namespace proclus::net {

struct RetryPolicy {
  // Retries after the initial attempt; 0 disables retrying entirely
  // (CallWithRetry degenerates to Call).
  int max_retries = 0;
  // Backoff bounds: sleep_0 = initial, sleep_{i+1} = uniform(initial,
  // 3 * sleep_i) capped at max (decorrelated jitter).
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  // Wall-time budget across all attempts and sleeps; 0 = attempts-only.
  // A retry whose backoff would overrun the budget is not taken.
  double budget_ms = 0.0;
  // Jitter seed; fixed seed => identical backoff sequences across runs.
  uint64_t seed = 1;

  bool enabled() const { return max_retries > 0; }
  Status Validate() const;
};

// Counters a client accumulates across CallWithRetry invocations.
struct RetryStats {
  int64_t attempts = 0;    // every send attempt, first tries included
  int64_t retries = 0;     // attempts after the first, per logical call
  int64_t reconnects = 0;  // successful re-Connects after a transport error
  int64_t give_ups = 0;    // logical calls that exhausted the policy
  double backoff_ms_total = 0.0;
};

// One logical call's backoff sequence. Deterministic: the i-th NextMs()
// for a given (policy.seed, stream) is the same every run.
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryPolicy& policy, uint64_t stream);

  // The sleep before the next retry, in ms.
  double NextMs();

 private:
  const double initial_;
  const double max_;
  const uint64_t seed_;
  const uint64_t stream_;
  double prev_ = 0.0;
  uint64_t draws_ = 0;
};

}  // namespace proclus::net

#endif  // PROCLUS_NET_RETRY_H_
