#include "net/retry.h"

#include <algorithm>

namespace proclus::net {

namespace {

// splitmix64, the same stateless mixer the fault injector and loadgen use.
uint64_t Mix(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t seed, uint64_t stream, uint64_t index) {
  return static_cast<double>(Mix(seed ^ (stream * 0x5851f42d4c957f2dull),
                                 index) >>
                             11) /
         static_cast<double>(1ull << 53);
}

}  // namespace

Status RetryPolicy::Validate() const {
  if (max_retries < 0) {
    return Status::InvalidArgument("retry policy: max_retries must be >= 0");
  }
  if (initial_backoff_ms < 0.0) {
    return Status::InvalidArgument(
        "retry policy: initial_backoff_ms must be >= 0");
  }
  if (max_backoff_ms < initial_backoff_ms) {
    return Status::InvalidArgument(
        "retry policy: max_backoff_ms must be >= initial_backoff_ms");
  }
  if (budget_ms < 0.0) {
    return Status::InvalidArgument("retry policy: budget_ms must be >= 0");
  }
  return Status::OK();
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy, uint64_t stream)
    : initial_(std::max(0.0, policy.initial_backoff_ms)),
      max_(std::max(initial_, policy.max_backoff_ms)),
      seed_(policy.seed),
      stream_(stream) {}

double BackoffSchedule::NextMs() {
  const uint64_t draw = draws_++;
  if (draw == 0) {
    prev_ = initial_;
    return prev_;
  }
  // Decorrelated jitter: uniform in [initial, 3 * prev], capped. Grows
  // roughly exponentially in expectation but never synchronizes retrying
  // clients into waves.
  const double hi = std::min(max_, 3.0 * prev_);
  const double u = UnitUniform(seed_, stream_, draw);
  prev_ = initial_ + u * std::max(0.0, hi - initial_);
  return prev_;
}

}  // namespace proclus::net
