#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <utility>

#include "data/generator.h"
#include "data/normalize.h"
#include "net/frame.h"

namespace proclus::net {

namespace {

// How often blocked loops re-check stop/disconnect conditions.
constexpr int kPollSliceMs = 50;
// How long a shed connection gets to present its first request before the
// server gives up on answering it politely.
constexpr int kShedReadTimeoutMs = 2000;

Response ErrorResponse(RequestType request, const Status& status) {
  Response response;
  response.request = request;
  response.ok = false;
  response.error = WireError::FromStatus(status);
  return response;
}

void FillResult(const service::JobResult& job_result, Response* response) {
  response->has_result = true;
  response->result.results = job_result.results;
  response->result.setting_seconds = job_result.setting_seconds;
  response->result.queue_seconds = job_result.queue_seconds;
  response->result.exec_seconds = job_result.exec_seconds;
  response->result.modeled_gpu_seconds = job_result.modeled_gpu_seconds;
  response->result.warm_device = job_result.warm_device;
  response->result.sanitizer_findings = job_result.sanitizer_findings;
  response->result.sanitizer_checked_accesses =
      job_result.sanitizer_checked_accesses;
  response->result.sanitizer_reports = job_result.sanitizer_reports;
  response->result.sweep_shards = job_result.sweep_shards;
  response->result.cache_hit = job_result.cache_hit;
  response->result.cache_key = job_result.cache_key;
}

bool IsTerminal(service::JobPhase phase) {
  return phase != service::JobPhase::kQueued &&
         phase != service::JobPhase::kRunning;
}

std::string HashHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

ProclusServer::ProclusServer(service::ProclusService* service,
                             ServerOptions options)
    : service_(service), options_(std::move(options)) {}

ProclusServer::~ProclusServer() { Stop(); }

Status ProclusServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  if (service_ == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  stopping_.store(false, std::memory_order_release);
  PROCLUS_RETURN_NOT_OK(listener_.Bind(options_.host, options_.port));
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ProclusServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Connection threads observe stopping_ between requests; requests already
  // in flight (wait-mode submits included) run to completion and get their
  // response — graceful stop drains, it does not abort.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(&connections_mutex_);
    connections.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  metrics_.gauge("net.active_connections")->Set(0.0);
  running_.store(false, std::memory_order_release);
}

void ProclusServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(&connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::unique_ptr<Connection>& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void ProclusServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket socket;
    const Status status = listener_.Accept(kPollSliceMs, &socket);
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ReapFinishedConnections();
      continue;
    }
    if (!status.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient accept failure; keep serving.
      continue;
    }
    ReapFinishedConnections();

    size_t active;
    {
      MutexLock lock(&connections_mutex_);
      active = connections_.size();
    }
    metrics_.counter("net.connections_accepted")->Increment();
    if (options_.fault != nullptr &&
        options_.fault->Should(FaultKind::kRefuseConnection)) {
      // Injected refusal: hang up before the first request, as a dying
      // server would. The client's only signal is the transport error.
      metrics_.counter("net.connections_refused")->Increment();
      socket.Close();
      continue;
    }
    if (active >= static_cast<size_t>(options_.max_connections)) {
      metrics_.counter("net.connections_shed")->Increment();
      ShedConnection(std::move(socket));
      continue;
    }

    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection* raw = connection.get();
    {
      MutexLock lock(&connections_mutex_);
      connections_.push_back(std::move(connection));
      metrics_.gauge("net.active_connections")
          ->Set(static_cast<double>(connections_.size()));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void ProclusServer::ShedConnection(Socket socket) {
  // Answer the first request so the client sees a retryable error rather
  // than a mute close; budget the read so a silent peer cannot stall the
  // accept loop.
  RequestType request_type = RequestType::kMetrics;
  if (socket.WaitReadable(kShedReadTimeoutMs).ok()) {
    std::string payload;
    if (ReadFrame(&socket, &payload).ok()) {
      Request request;
      if (DecodeRequest(payload, &request).ok()) {
        request_type = request.type;
      }
    }
  }
  metrics_.counter("net.resource_exhausted")->Increment();
  const Response response = ErrorResponse(
      request_type,
      Status::ResourceExhausted("connection budget exhausted; retry later"));
  std::string payload;
  if (EncodeResponse(response, &payload).ok()) {
    // Best-effort answer: the peer may already be gone. A failed write
    // still sheds the connection, but it is counted — a silent drop here
    // looks like a mute close to the client, which is exactly what this
    // path exists to avoid.
    if (!WriteFrame(&socket, payload).ok()) {
      metrics_.counter("net.shed_write_failures")->Increment();
    }
  }
  socket.Close();
}

void ProclusServer::ServeConnection(Connection* connection) {
  while (!stopping_.load(std::memory_order_acquire)) {
    const Status readable = connection->socket.WaitReadable(kPollSliceMs);
    if (readable.code() == StatusCode::kDeadlineExceeded) continue;
    if (!readable.ok()) break;
    std::string payload;
    bool clean_close = false;
    if (!ReadFrame(&connection->socket, &payload, &clean_close).ok()) break;
    if (!HandleRequest(connection, payload)) break;
  }
  // Uploads the connection never committed are dead: free their staging
  // buffers so an aborted client cannot leak server memory.
  for (const auto& [id, session] : connection->uploads) {
    service_->dataset_store()->UploadAbort(session);
  }
  connection->uploads.clear();
  connection->socket.Close();
  connection->done.store(true, std::memory_order_release);
}

bool ProclusServer::HandleRequest(Connection* connection,
                                  const std::string& payload) {
  metrics_.counter("net.requests")->Increment();
  Request request;
  Response response;
  const Status decoded = DecodeRequest(payload, &request);
  if (decoded.ok() && request.type == RequestType::kUploadChunk) {
    // The chunk header is followed by exactly one raw frame holding the
    // payload bytes; consume it before anything can be answered so header
    // and payload never desynchronize on this connection.
    if (!ReadFrame(&connection->socket, &request.chunk_payload).ok()) {
      return false;
    }
    if (static_cast<int64_t>(request.chunk_payload.size()) !=
        request.chunk_declared_bytes) {
      metrics_.counter("net.decode_errors")->Increment();
      response = ErrorResponse(
          request.type,
          Status::InvalidArgument(
              "upload_chunk payload frame is " +
              std::to_string(request.chunk_payload.size()) +
              " bytes but the header declared " +
              std::to_string(request.chunk_declared_bytes)));
      std::string encoded_error;
      if (!EncodeResponse(response, &encoded_error).ok()) return false;
      metrics_.counter("net.responses_error")->Increment();
      return WriteFrameWithFaults(&connection->socket, encoded_error,
                                  options_.fault)
          .ok();
    }
  }
  if (!decoded.ok()) {
    metrics_.counter("net.decode_errors")->Increment();
    response = ErrorResponse(RequestType::kMetrics, decoded);
  } else {
    bool peer_lost = false;
    response = Dispatch(connection, request, &peer_lost);
    if (peer_lost) return false;  // nobody left to answer
  }
  metrics_.counter(response.ok ? "net.responses_ok" : "net.responses_error")
      ->Increment();
  std::string encoded;
  const Status encode_status = EncodeResponse(response, &encoded);
  if (!encode_status.ok()) {
    const Response fallback =
        ErrorResponse(response.request,
                      Status::Internal("response encoding failed: " +
                                       encode_status.message()));
    if (!EncodeResponse(fallback, &encoded).ok()) return false;
  }
  return WriteFrameWithFaults(&connection->socket, encoded, options_.fault)
      .ok();
}

Response ProclusServer::Dispatch(Connection* connection,
                                 const Request& request, bool* peer_lost) {
  switch (request.type) {
    case RequestType::kRegisterDataset:
      return HandleRegisterDataset(request);
    case RequestType::kUploadBegin:
      return HandleUploadBegin(connection, request);
    case RequestType::kUploadChunk:
      return HandleUploadChunk(connection, request);
    case RequestType::kUploadCommit:
      return HandleUploadCommit(connection, request);
    case RequestType::kListDatasets:
      return HandleListDatasets();
    case RequestType::kEvictDataset:
      return HandleEvictDataset(request);
    case RequestType::kEvictResult:
      return HandleEvictResult(request);
    case RequestType::kSubmitSingle:
    case RequestType::kSubmitSweep:
      return HandleSubmit(connection, request, peer_lost);
    case RequestType::kStatus:
      return HandleStatus(request);
    case RequestType::kCancel:
      return HandleCancel(request);
    case RequestType::kMetrics:
      return HandleMetrics();
    case RequestType::kHealth:
      return HandleHealth();
  }
  return ErrorResponse(request.type,
                       Status::Internal("unhandled request type"));
}

Response ProclusServer::HandleRegisterDataset(const Request& request) {
  data::Matrix points;
  if (request.has_inline_data) {
    points = request.inline_data;
  } else {
    data::GeneratorConfig config;
    config.n = request.generate.n;
    config.d = request.generate.d;
    config.num_clusters = request.generate.clusters;
    config.subspace_dim = std::max(2, request.generate.d / 3);
    config.seed = request.generate.seed;
    data::Dataset dataset;
    const Status status = data::GenerateSubspaceData(config, &dataset);
    if (!status.ok()) return ErrorResponse(request.type, status);
    if (request.generate.normalize) data::MinMaxNormalize(&dataset.points);
    points = std::move(dataset.points);
  }
  const Status status =
      service_->RegisterDataset(request.dataset_id, std::move(points));
  if (!status.ok()) return ErrorResponse(request.type, status);
  Response response;
  response.request = request.type;
  response.ok = true;
  return response;
}

Response ProclusServer::HandleUploadBegin(Connection* connection,
                                          const Request& request) {
  std::shared_ptr<store::UploadSession> session;
  const Status status = service_->dataset_store()->UploadBegin(
      request.dataset_id, request.upload_rows, request.upload_cols, &session);
  if (!status.ok()) return ErrorResponse(request.type, status);
  const uint64_t session_id =
      next_upload_session_.fetch_add(1, std::memory_order_relaxed);
  connection->uploads.emplace(session_id, std::move(session));
  metrics_.counter("net.uploads_started")->Increment();
  Response response;
  response.request = request.type;
  response.ok = true;
  response.upload_session = session_id;
  return response;
}

Response ProclusServer::HandleUploadChunk(Connection* connection,
                                          const Request& request) {
  const auto it = connection->uploads.find(request.upload_session);
  if (it == connection->uploads.end()) {
    return ErrorResponse(
        request.type,
        Status::InvalidArgument("unknown upload session: " +
                                std::to_string(request.upload_session)));
  }
  const Status status = service_->dataset_store()->UploadChunk(
      it->second, request.upload_offset, request.chunk_payload.data(),
      static_cast<int64_t>(request.chunk_payload.size()));
  if (!status.ok()) return ErrorResponse(request.type, status);
  metrics_.counter("net.upload_chunk_bytes")
      ->Increment(static_cast<int64_t>(request.chunk_payload.size()));
  Response response;
  response.request = request.type;
  response.ok = true;
  return response;
}

Response ProclusServer::HandleUploadCommit(Connection* connection,
                                           const Request& request) {
  const auto it = connection->uploads.find(request.upload_session);
  if (it == connection->uploads.end()) {
    return ErrorResponse(
        request.type,
        Status::InvalidArgument("unknown upload session: " +
                                std::to_string(request.upload_session)));
  }
  uint64_t hash = 0;
  bool deduped = false;
  const Status status = service_->dataset_store()->UploadCommit(
      it->second, request.upload_crc32, &hash, &deduped);
  if (!status.ok()) return ErrorResponse(request.type, status);
  connection->uploads.erase(it);
  metrics_.counter("net.uploads_committed")->Increment();
  Response response;
  response.request = request.type;
  response.ok = true;
  response.dataset_hash = HashHex(hash);
  response.deduped = deduped;
  return response;
}

Response ProclusServer::HandleListDatasets() {
  Response response;
  response.request = RequestType::kListDatasets;
  response.ok = true;
  response.has_datasets = true;
  for (const store::DatasetInfo& info :
       service_->dataset_store()->List()) {
    WireDatasetInfo wire;
    wire.id = info.id;
    wire.hash = HashHex(info.hash);
    wire.rows = info.rows;
    wire.cols = info.cols;
    wire.bytes = info.bytes;
    wire.resident = info.resident;
    wire.pinned = info.pinned;
    response.datasets.push_back(std::move(wire));
  }
  return response;
}

Response ProclusServer::HandleEvictDataset(const Request& request) {
  const Status status =
      service_->dataset_store()->Evict(request.dataset_id);
  if (!status.ok()) return ErrorResponse(request.type, status);
  Response response;
  response.request = request.type;
  response.ok = true;
  return response;
}

Response ProclusServer::HandleEvictResult(const Request& request) {
  service::ResultCache* cache = service_->result_cache();
  Response response;
  response.request = request.type;
  if (cache == nullptr) {
    // No cache configured: nothing can be resident, so an evict is a
    // successful no-op rather than an error a generic janitor would trip on.
    response.ok = true;
    return response;
  }
  bool evicted = false;
  const Status status = cache->EvictByHex(request.cache_key, &evicted);
  if (!status.ok()) return ErrorResponse(request.type, status);
  response.ok = true;
  response.evicted = evicted;
  return response;
}

Response ProclusServer::HandleSubmit(Connection* connection,
                                     const Request& request,
                                     bool* peer_lost) {
  service::JobSpec spec;
  spec.kind = request.type == RequestType::kSubmitSweep
                  ? service::JobKind::kSweep
                  : service::JobKind::kSingle;
  spec.dataset_id = request.dataset_id;
  spec.params = request.params;
  spec.options = request.options;
  spec.sweep = request.sweep;
  spec.priority = request.priority;
  spec.timeout_seconds = request.timeout_ms / 1000.0;

  service::JobHandle handle;
  const Status submitted = service_->Submit(std::move(spec), &handle);
  if (!submitted.ok()) {
    if (submitted.code() == StatusCode::kResourceExhausted) {
      metrics_.counter("net.resource_exhausted")->Increment();
    }
    return ErrorResponse(request.type, submitted);
  }

  if (!request.wait) {
    metrics_.counter("net.submit_async")->Increment();
    {
      MutexLock lock(&jobs_mutex_);
      async_jobs_.emplace(handle.id(), handle);
    }
    Response response;
    response.request = request.type;
    response.ok = true;
    response.job_id = handle.id();
    response.phase = service::JobPhaseName(handle.phase());
    return response;
  }

  metrics_.counter("net.submit_wait")->Increment();
  const auto wait_start = std::chrono::steady_clock::now();

  // The completion signal lives on the heap: when the peer disconnects we
  // cancel and walk away, and a *running* job only reaches its terminal
  // phase (and fires the callback) later, on a worker thread.
  struct WaitState {
    Mutex mutex;
    std::condition_variable cv;
    bool done GUARDED_BY(mutex) = false;
  };
  auto state = std::make_shared<WaitState>();
  handle.OnComplete([state](const service::JobResult&) {
    {
      MutexLock lock(&state->mutex);
      state->done = true;
    }
    state->cv.notify_all();
  });

  for (;;) {
    bool done;
    {
      MutexLock lock(&state->mutex);
      if (!state->done) {
        state->cv.wait_for(lock.native(),
                           std::chrono::milliseconds(kPollSliceMs));
      }
      done = state->done;
    }
    if (done) break;
    if (connection->socket.PeerClosed()) {
      metrics_.counter("net.disconnect_cancels")->Increment();
      handle.Cancel();
      *peer_lost = true;
      return Response();
    }
  }

  const service::JobResult* job_result = handle.TryGet();
  metrics_.histogram("net.wait_seconds")
      ->Observe(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count());
  if (job_result == nullptr) {
    return ErrorResponse(request.type,
                         Status::Internal("job signalled completion without "
                                          "a result"));
  }
  Response response;
  response.request = request.type;
  response.job_id = handle.id();
  response.phase = service::JobPhaseName(handle.phase());
  if (!job_result->status.ok()) {
    response.ok = false;
    response.error = WireError::FromStatus(job_result->status);
    // simtcheck failures still ship the violation reports so the client
    // sees what fired, not just the summary in the error message.
    if (job_result->sanitizer_findings > 0) FillResult(*job_result, &response);
    return response;
  }
  response.ok = true;
  FillResult(*job_result, &response);
  return response;
}

Response ProclusServer::HandleStatus(const Request& request) {
  service::JobHandle handle;
  {
    MutexLock lock(&jobs_mutex_);
    const auto it = async_jobs_.find(request.job_id);
    if (it == async_jobs_.end()) {
      return ErrorResponse(
          request.type,
          Status::InvalidArgument("unknown job id: " +
                                  std::to_string(request.job_id)));
    }
    handle = it->second;
  }
  Response response;
  response.request = request.type;
  response.job_id = request.job_id;
  const service::JobPhase phase = handle.phase();
  response.phase = service::JobPhaseName(phase);
  if (!IsTerminal(phase)) {
    response.ok = true;
    return response;
  }
  const service::JobResult* job_result = handle.TryGet();
  if (job_result == nullptr || !job_result->status.ok()) {
    response.ok = false;
    response.error = WireError::FromStatus(
        job_result == nullptr
            ? Status::Internal("terminal job without a result")
            : job_result->status);
    if (job_result != nullptr && job_result->sanitizer_findings > 0 &&
        request.include_result) {
      FillResult(*job_result, &response);
    }
    return response;
  }
  response.ok = true;
  if (request.include_result) FillResult(*job_result, &response);
  return response;
}

Response ProclusServer::HandleCancel(const Request& request) {
  service::JobHandle handle;
  {
    MutexLock lock(&jobs_mutex_);
    const auto it = async_jobs_.find(request.job_id);
    if (it == async_jobs_.end()) {
      return ErrorResponse(
          request.type,
          Status::InvalidArgument("unknown job id: " +
                                  std::to_string(request.job_id)));
    }
    handle = it->second;
  }
  handle.Cancel();
  Response response;
  response.request = request.type;
  response.ok = true;
  response.job_id = request.job_id;
  response.phase = service::JobPhaseName(handle.phase());
  return response;
}

Response ProclusServer::HandleMetrics() {
  service_->PublishMetrics(&metrics_);
  if (options_.fault != nullptr) options_.fault->PublishMetrics(&metrics_);
  {
    MutexLock lock(&connections_mutex_);
    metrics_.gauge("net.active_connections")
        ->Set(static_cast<double>(connections_.size()));
  }
  Response response;
  response.request = RequestType::kMetrics;
  response.ok = true;
  response.metrics = metrics_.JsonSnapshot();
  return response;
}

Response ProclusServer::HandleHealth() {
  Response response;
  response.request = RequestType::kHealth;
  response.ok = true;
  response.has_health = true;
  WireHealth& health = response.health;
  health.queue_depth = service_->queue_depth();
  health.queue_capacity = service_->options().queue_capacity;
  {
    MutexLock lock(&connections_mutex_);
    health.active_connections = static_cast<int>(connections_.size());
  }
  health.max_connections = options_.max_connections;
  health.devices_total = service_->device_capacity();
  health.devices_leased = service_->devices_leased();
  health.draining = stopping_.load(std::memory_order_acquire);
  if (options_.fault != nullptr) {
    health.faults_injected_total = options_.fault->injected_total();
  }
  const store::StoreStats store_stats =
      service_->dataset_store()->stats();
  health.store_datasets = store_stats.datasets;
  health.store_resident_bytes = store_stats.resident_bytes;
  health.store_evictions = store_stats.evictions;
  health.store_upload_bytes_total = store_stats.upload_bytes_total;
  const service::ResultCacheStats cache_stats =
      service_->result_cache_stats();
  health.cache_entries = cache_stats.entries;
  health.cache_bytes = cache_stats.bytes;
  health.cache_hits = cache_stats.hits;
  health.cache_misses = cache_stats.misses;
  health.cache_inserts = cache_stats.inserts;
  health.cache_evictions = cache_stats.evictions;
  health.cache_dedup_joins = cache_stats.dedup_joins;
  return response;
}

}  // namespace proclus::net
