#include "net/protocol.h"

#include <cstdio>
#include <utility>

#include "net/frame.h"

namespace proclus::net {

namespace {

using json::JsonValue;

// --- small enum <-> token tables ---------------------------------------------

struct CodeName {
  StatusCode code;
  const char* name;
};

constexpr CodeName kCodeNames[] = {
    {StatusCode::kOk, "OK"},
    {StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
    {StatusCode::kOutOfRange, "OUT_OF_RANGE"},
    {StatusCode::kFailedPrecondition, "FAILED_PRECONDITION"},
    {StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
    {StatusCode::kIoError, "IO_ERROR"},
    {StatusCode::kInternal, "INTERNAL"},
    {StatusCode::kCancelled, "CANCELLED"},
    {StatusCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
};

const char* BackendToken(core::ComputeBackend backend) {
  switch (backend) {
    case core::ComputeBackend::kCpu: return "cpu";
    case core::ComputeBackend::kMultiCore: return "mc";
    case core::ComputeBackend::kGpu: return "gpu";
  }
  return "cpu";
}

Status BackendFromToken(const std::string& token,
                        core::ComputeBackend* out) {
  if (token == "cpu") *out = core::ComputeBackend::kCpu;
  else if (token == "mc") *out = core::ComputeBackend::kMultiCore;
  else if (token == "gpu") *out = core::ComputeBackend::kGpu;
  else return Status::InvalidArgument("unknown backend: " + token);
  return Status::OK();
}

const char* StrategyToken(core::Strategy strategy) {
  switch (strategy) {
    case core::Strategy::kBaseline: return "baseline";
    case core::Strategy::kFast: return "fast";
    case core::Strategy::kFastStar: return "faststar";
  }
  return "baseline";
}

Status StrategyFromToken(const std::string& token, core::Strategy* out) {
  if (token == "baseline") *out = core::Strategy::kBaseline;
  else if (token == "fast") *out = core::Strategy::kFast;
  else if (token == "faststar") *out = core::Strategy::kFastStar;
  else return Status::InvalidArgument("unknown strategy: " + token);
  return Status::OK();
}

const char* ReuseToken(core::ReuseLevel reuse) {
  switch (reuse) {
    case core::ReuseLevel::kNone: return "none";
    case core::ReuseLevel::kCache: return "cache";
    case core::ReuseLevel::kGreedy: return "greedy";
    case core::ReuseLevel::kWarmStart: return "warm_start";
  }
  return "warm_start";
}

Status ReuseFromToken(const std::string& token, core::ReuseLevel* out) {
  if (token == "none") *out = core::ReuseLevel::kNone;
  else if (token == "cache") *out = core::ReuseLevel::kCache;
  else if (token == "greedy") *out = core::ReuseLevel::kGreedy;
  else if (token == "warm_start") *out = core::ReuseLevel::kWarmStart;
  else return Status::InvalidArgument("unknown reuse level: " + token);
  return Status::OK();
}

// --- field codecs ------------------------------------------------------------

JsonValue EncodeParams(const core::ProclusParams& params) {
  JsonValue v = JsonValue::Object();
  v.Set("k", JsonValue::Int(params.k));
  v.Set("l", JsonValue::Int(params.l));
  v.Set("a", JsonValue::Double(params.a));
  v.Set("b", JsonValue::Double(params.b));
  v.Set("min_dev", JsonValue::Double(params.min_dev));
  v.Set("itr_pat", JsonValue::Int(params.itr_pat));
  v.Set("seed", JsonValue::Int(static_cast<int64_t>(params.seed)));
  v.Set("max_total_iterations", JsonValue::Int(params.max_total_iterations));
  return v;
}

void DecodeParams(const JsonValue* v, core::ProclusParams* params) {
  if (v == nullptr || !v->is_object()) return;
  const core::ProclusParams defaults;
  auto field = [&](const char* name) { return v->Find(name); };
  if (const JsonValue* f = field("k")) params->k = static_cast<int>(f->AsInt(defaults.k));
  if (const JsonValue* f = field("l")) params->l = static_cast<int>(f->AsInt(defaults.l));
  if (const JsonValue* f = field("a")) params->a = f->AsDouble(defaults.a);
  if (const JsonValue* f = field("b")) params->b = f->AsDouble(defaults.b);
  if (const JsonValue* f = field("min_dev")) params->min_dev = f->AsDouble(defaults.min_dev);
  if (const JsonValue* f = field("itr_pat")) params->itr_pat = static_cast<int>(f->AsInt(defaults.itr_pat));
  if (const JsonValue* f = field("seed")) params->seed = static_cast<uint64_t>(f->AsInt(static_cast<int64_t>(defaults.seed)));
  if (const JsonValue* f = field("max_total_iterations")) params->max_total_iterations = static_cast<int>(f->AsInt(defaults.max_total_iterations));
}

JsonValue EncodeOptions(const core::ClusterOptions& options) {
  JsonValue v = JsonValue::Object();
  v.Set("backend", JsonValue::Str(BackendToken(options.backend)));
  v.Set("strategy", JsonValue::Str(StrategyToken(options.strategy)));
  if (options.num_threads != 0) {
    v.Set("num_threads", JsonValue::Int(options.num_threads));
  }
  if (options.gpu_assign_block_dim != 128) {
    v.Set("gpu_assign_block_dim",
          JsonValue::Int(options.gpu_assign_block_dim));
  }
  if (options.gpu_streams) v.Set("gpu_streams", JsonValue::Bool(true));
  if (options.gpu_device_dim_selection) {
    v.Set("gpu_device_dim_selection", JsonValue::Bool(true));
  }
  if (options.gpu_sanitize) v.Set("gpu_sanitize", JsonValue::Bool(true));
  return v;
}

Status DecodeOptions(const JsonValue* v, core::ClusterOptions* options) {
  // The wire never carries the host-pointer hooks (device/pool/cancel/
  // trace); the service owns those. The default backend over the wire is
  // the paper's recommended GPU + FAST pairing.
  *options = core::ClusterOptions::Gpu();
  if (v == nullptr || !v->is_object()) return Status::OK();
  if (const JsonValue* f = v->Find("backend")) {
    PROCLUS_RETURN_NOT_OK(BackendFromToken(f->AsString(), &options->backend));
  }
  if (const JsonValue* f = v->Find("strategy")) {
    PROCLUS_RETURN_NOT_OK(
        StrategyFromToken(f->AsString(), &options->strategy));
  }
  if (const JsonValue* f = v->Find("num_threads")) {
    options->num_threads = static_cast<int>(f->AsInt());
  }
  if (const JsonValue* f = v->Find("gpu_assign_block_dim")) {
    options->gpu_assign_block_dim = static_cast<int>(f->AsInt(128));
  }
  if (const JsonValue* f = v->Find("gpu_streams")) {
    options->gpu_streams = f->AsBool();
  }
  if (const JsonValue* f = v->Find("gpu_device_dim_selection")) {
    options->gpu_device_dim_selection = f->AsBool();
  }
  if (const JsonValue* f = v->Find("gpu_sanitize")) {
    options->gpu_sanitize = f->AsBool();
  }
  return Status::OK();
}

JsonValue EncodeIntArray(const std::vector<int>& values) {
  JsonValue v = JsonValue::Array();
  for (const int value : values) v.Append(JsonValue::Int(value));
  return v;
}

std::vector<int> DecodeIntArray(const JsonValue* v) {
  std::vector<int> out;
  if (v == nullptr || !v->is_array()) return out;
  out.reserve(v->array_value.size());
  for (const JsonValue& element : v->array_value) {
    out.push_back(static_cast<int>(element.AsInt()));
  }
  return out;
}

JsonValue EncodeProclusResult(const core::ProclusResult& result) {
  JsonValue v = JsonValue::Object();
  v.Set("medoids", EncodeIntArray(result.medoids));
  JsonValue dims = JsonValue::Array();
  for (const std::vector<int>& cluster_dims : result.dimensions) {
    dims.Append(EncodeIntArray(cluster_dims));
  }
  v.Set("dimensions", std::move(dims));
  v.Set("assignment", EncodeIntArray(result.assignment));
  v.Set("iterative_cost", JsonValue::Double(result.iterative_cost));
  v.Set("refined_cost", JsonValue::Double(result.refined_cost));
  return v;
}

core::ProclusResult DecodeProclusResult(const JsonValue& v) {
  core::ProclusResult result;
  result.medoids = DecodeIntArray(v.Find("medoids"));
  if (const JsonValue* dims = v.Find("dimensions");
      dims != nullptr && dims->is_array()) {
    result.dimensions.reserve(dims->array_value.size());
    for (const JsonValue& cluster_dims : dims->array_value) {
      result.dimensions.push_back(DecodeIntArray(&cluster_dims));
    }
  }
  result.assignment = DecodeIntArray(v.Find("assignment"));
  if (const JsonValue* f = v.Find("iterative_cost")) {
    result.iterative_cost = f->AsDouble();
  }
  if (const JsonValue* f = v.Find("refined_cost")) {
    result.refined_cost = f->AsDouble();
  }
  return result;
}

JsonValue EncodeWireJobResult(const WireJobResult& result) {
  JsonValue v = JsonValue::Object();
  JsonValue results = JsonValue::Array();
  for (const core::ProclusResult& r : result.results) {
    results.Append(EncodeProclusResult(r));
  }
  v.Set("results", std::move(results));
  if (!result.setting_seconds.empty()) {
    JsonValue seconds = JsonValue::Array();
    for (const double s : result.setting_seconds) {
      seconds.Append(JsonValue::Double(s));
    }
    v.Set("setting_seconds", std::move(seconds));
  }
  v.Set("queue_seconds", JsonValue::Double(result.queue_seconds));
  v.Set("exec_seconds", JsonValue::Double(result.exec_seconds));
  if (result.modeled_gpu_seconds > 0.0) {
    v.Set("modeled_gpu_seconds",
          JsonValue::Double(result.modeled_gpu_seconds));
  }
  v.Set("warm_device", JsonValue::Bool(result.warm_device));
  if (result.sanitizer_findings > 0) {
    v.Set("sanitizer_findings", JsonValue::Int(result.sanitizer_findings));
  }
  if (result.sanitizer_checked_accesses > 0) {
    v.Set("sanitizer_checked_accesses",
          JsonValue::Int(result.sanitizer_checked_accesses));
  }
  if (!result.sanitizer_reports.empty()) {
    JsonValue reports = JsonValue::Array();
    for (const std::string& report : result.sanitizer_reports) {
      reports.Append(JsonValue::Str(report));
    }
    v.Set("sanitizer_reports", std::move(reports));
  }
  if (result.sweep_shards > 0) {
    v.Set("sweep_shards", JsonValue::Int(result.sweep_shards));
  }
  if (result.cache_hit) v.Set("cache_hit", JsonValue::Bool(true));
  if (!result.cache_key.empty()) {
    v.Set("cache_key", JsonValue::Str(result.cache_key));
  }
  return v;
}

WireJobResult DecodeWireJobResult(const JsonValue& v) {
  WireJobResult result;
  if (const JsonValue* results = v.Find("results");
      results != nullptr && results->is_array()) {
    result.results.reserve(results->array_value.size());
    for (const JsonValue& r : results->array_value) {
      result.results.push_back(DecodeProclusResult(r));
    }
  }
  if (const JsonValue* seconds = v.Find("setting_seconds");
      seconds != nullptr && seconds->is_array()) {
    for (const JsonValue& s : seconds->array_value) {
      result.setting_seconds.push_back(s.AsDouble());
    }
  }
  if (const JsonValue* f = v.Find("queue_seconds")) result.queue_seconds = f->AsDouble();
  if (const JsonValue* f = v.Find("exec_seconds")) result.exec_seconds = f->AsDouble();
  if (const JsonValue* f = v.Find("modeled_gpu_seconds")) result.modeled_gpu_seconds = f->AsDouble();
  if (const JsonValue* f = v.Find("warm_device")) result.warm_device = f->AsBool();
  if (const JsonValue* f = v.Find("sanitizer_findings")) result.sanitizer_findings = f->AsInt();
  if (const JsonValue* f = v.Find("sanitizer_checked_accesses")) {
    result.sanitizer_checked_accesses = f->AsInt();
  }
  if (const JsonValue* reports = v.Find("sanitizer_reports");
      reports != nullptr && reports->is_array()) {
    for (const JsonValue& report : reports->array_value) {
      result.sanitizer_reports.push_back(report.AsString());
    }
  }
  if (const JsonValue* f = v.Find("sweep_shards")) {
    result.sweep_shards = static_cast<int>(f->AsInt());
  }
  if (const JsonValue* f = v.Find("cache_hit")) result.cache_hit = f->AsBool();
  if (const JsonValue* f = v.Find("cache_key")) {
    result.cache_key = f->AsString();
  }
  return result;
}

}  // namespace

// --- wire error codes --------------------------------------------------------

const char* WireCodeName(StatusCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "INTERNAL";
}

StatusCode WireCodeFromName(const std::string& name) {
  for (const CodeName& entry : kCodeNames) {
    if (name == entry.name) return entry.code;
  }
  return StatusCode::kInternal;
}

bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kResourceExhausted;
}

bool IsIdempotentRequest(const Request& request) {
  switch (request.type) {
    case RequestType::kSubmitSingle:
    case RequestType::kSubmitSweep:
      // A wait-mode submit's job dies with the connection (the server
      // cancels on disconnect), so resending cannot double-run it. An
      // async submit's ack can be lost *after* the job was enqueued —
      // resending could duplicate the job, so it is not retry-safe.
      return request.wait;
    case RequestType::kUploadBegin:
    case RequestType::kUploadChunk:
    case RequestType::kUploadCommit:
      // Upload sessions are connection-scoped server state: a retry over a
      // fresh connection targets a session that no longer exists (begin) or
      // replays an offset the session already advanced past (chunk/commit).
      return false;
    case RequestType::kRegisterDataset:
    case RequestType::kListDatasets:
    case RequestType::kEvictDataset:
    case RequestType::kEvictResult:
    case RequestType::kStatus:
    case RequestType::kCancel:
    case RequestType::kMetrics:
    case RequestType::kHealth:
      return true;
  }
  return true;
}

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kRegisterDataset: return "register_dataset";
    case RequestType::kUploadBegin: return "upload_begin";
    case RequestType::kUploadChunk: return "upload_chunk";
    case RequestType::kUploadCommit: return "upload_commit";
    case RequestType::kListDatasets: return "list_datasets";
    case RequestType::kEvictDataset: return "evict_dataset";
    case RequestType::kEvictResult: return "evict_result";
    case RequestType::kSubmitSingle: return "submit_single";
    case RequestType::kSubmitSweep: return "submit_sweep";
    case RequestType::kStatus: return "status";
    case RequestType::kCancel: return "cancel";
    case RequestType::kMetrics: return "metrics";
    case RequestType::kHealth: return "health";
  }
  return "?";
}

namespace {

Status RequestTypeFromName(const std::string& name, RequestType* out) {
  for (const RequestType type :
       {RequestType::kRegisterDataset, RequestType::kUploadBegin,
        RequestType::kUploadChunk, RequestType::kUploadCommit,
        RequestType::kListDatasets, RequestType::kEvictDataset,
        RequestType::kEvictResult, RequestType::kSubmitSingle,
        RequestType::kSubmitSweep,
        RequestType::kStatus, RequestType::kCancel, RequestType::kMetrics,
        RequestType::kHealth}) {
    if (name == RequestTypeName(type)) {
      *out = type;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown request type: " + name);
}

}  // namespace

// --- requests ----------------------------------------------------------------

Status EncodeRequest(const Request& request, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  JsonValue v = JsonValue::Object();
  v.Set("type", JsonValue::Str(RequestTypeName(request.type)));
  switch (request.type) {
    case RequestType::kRegisterDataset: {
      if (request.dataset_id.empty()) {
        return Status::InvalidArgument("register_dataset needs dataset_id");
      }
      if (request.has_inline_data == request.has_generate) {
        return Status::InvalidArgument(
            "register_dataset needs exactly one of inline data / generate");
      }
      v.Set("id", JsonValue::Str(request.dataset_id));
      if (request.has_inline_data) {
        // Inline values serialize as "%.17g" doubles — up to ~25 bytes per
        // float32 plus the separator, a ~10x blowup over the binary size.
        // A frame over kMaxFrameBytes would only fail later, deep inside
        // WriteFrame, after the giant JSON string was already built; check
        // the worst-case encoded size up front and point the caller at the
        // chunked path that exists for exactly this case.
        constexpr int64_t kMaxEncodedBytesPerValue = 26;
        constexpr int64_t kHeaderSlackBytes = 512;
        const int64_t estimated =
            request.inline_data.size() * kMaxEncodedBytesPerValue +
            static_cast<int64_t>(request.dataset_id.size()) +
            kHeaderSlackBytes;
        if (estimated > static_cast<int64_t>(kMaxFrameBytes)) {
          return Status::InvalidArgument(
              "register_dataset inline values for " +
              std::to_string(request.inline_data.size()) +
              " floats would exceed the frame limit (" +
              std::to_string(kMaxFrameBytes) +
              " bytes); use the chunked binary upload path instead "
              "(upload_begin/upload_chunk/upload_commit, "
              "ProclusClient::UploadDataset)");
        }
        v.Set("rows", JsonValue::Int(request.inline_data.rows()));
        v.Set("cols", JsonValue::Int(request.inline_data.cols()));
        JsonValue values = JsonValue::Array();
        const float* data = request.inline_data.data();
        const int64_t size = request.inline_data.size();
        values.array_value.reserve(static_cast<size_t>(size));
        for (int64_t i = 0; i < size; ++i) {
          values.Append(JsonValue::Double(static_cast<double>(data[i])));
        }
        v.Set("values", std::move(values));
      } else {
        JsonValue gen = JsonValue::Object();
        gen.Set("n", JsonValue::Int(request.generate.n));
        gen.Set("d", JsonValue::Int(request.generate.d));
        gen.Set("clusters", JsonValue::Int(request.generate.clusters));
        gen.Set("seed",
                JsonValue::Int(static_cast<int64_t>(request.generate.seed)));
        gen.Set("normalize", JsonValue::Bool(request.generate.normalize));
        v.Set("generate", std::move(gen));
      }
      break;
    }
    case RequestType::kUploadBegin:
      if (request.dataset_id.empty()) {
        return Status::InvalidArgument("upload_begin needs dataset_id");
      }
      if (request.upload_rows <= 0 || request.upload_cols <= 0) {
        return Status::InvalidArgument(
            "upload_begin needs rows > 0 and cols > 0");
      }
      v.Set("id", JsonValue::Str(request.dataset_id));
      v.Set("rows", JsonValue::Int(request.upload_rows));
      v.Set("cols", JsonValue::Int(request.upload_cols));
      break;
    case RequestType::kUploadChunk:
      if (request.upload_session == 0) {
        return Status::InvalidArgument("upload_chunk needs a session");
      }
      if (request.chunk_payload.empty()) {
        return Status::InvalidArgument("upload_chunk needs payload bytes");
      }
      if (request.chunk_payload.size() > kMaxFrameBytes) {
        return Status::InvalidArgument(
            "upload_chunk payload exceeds the frame limit; send smaller "
            "chunks");
      }
      v.Set("session",
            JsonValue::Int(static_cast<int64_t>(request.upload_session)));
      v.Set("offset", JsonValue::Int(request.upload_offset));
      v.Set("size", JsonValue::Int(
                        static_cast<int64_t>(request.chunk_payload.size())));
      break;
    case RequestType::kUploadCommit:
      if (request.upload_session == 0) {
        return Status::InvalidArgument("upload_commit needs a session");
      }
      v.Set("session",
            JsonValue::Int(static_cast<int64_t>(request.upload_session)));
      v.Set("crc32",
            JsonValue::Int(static_cast<int64_t>(request.upload_crc32)));
      break;
    case RequestType::kListDatasets:
      break;
    case RequestType::kEvictDataset:
      if (request.dataset_id.empty()) {
        return Status::InvalidArgument("evict_dataset needs dataset_id");
      }
      v.Set("id", JsonValue::Str(request.dataset_id));
      break;
    case RequestType::kEvictResult:
      if (request.cache_key.empty()) {
        return Status::InvalidArgument("evict_result needs cache_key");
      }
      v.Set("cache_key", JsonValue::Str(request.cache_key));
      break;
    case RequestType::kSubmitSingle:
    case RequestType::kSubmitSweep: {
      if (request.dataset_id.empty()) {
        return Status::InvalidArgument("submit needs dataset_id");
      }
      v.Set("dataset_id", JsonValue::Str(request.dataset_id));
      v.Set("params", EncodeParams(request.params));
      v.Set("options", EncodeOptions(request.options));
      v.Set("priority",
            JsonValue::Str(request.priority ==
                                   service::JobPriority::kInteractive
                               ? "interactive"
                               : "bulk"));
      if (request.timeout_ms > 0.0) {
        v.Set("timeout_ms", JsonValue::Double(request.timeout_ms));
      }
      v.Set("wait", JsonValue::Bool(request.wait));
      if (request.type == RequestType::kSubmitSweep) {
        if (request.sweep.settings.empty()) {
          return Status::InvalidArgument("submit_sweep needs settings");
        }
        JsonValue settings = JsonValue::Array();
        for (const core::ParamSetting& s : request.sweep.settings) {
          JsonValue setting = JsonValue::Object();
          setting.Set("k", JsonValue::Int(s.k));
          setting.Set("l", JsonValue::Int(s.l));
          settings.Append(std::move(setting));
        }
        v.Set("settings", std::move(settings));
        v.Set("reuse", JsonValue::Str(ReuseToken(request.sweep.reuse)));
        if (request.sweep.max_shards != 0) {
          v.Set("max_shards", JsonValue::Int(request.sweep.max_shards));
        }
      }
      break;
    }
    case RequestType::kStatus:
      v.Set("job_id", JsonValue::Int(static_cast<int64_t>(request.job_id)));
      v.Set("include_result", JsonValue::Bool(request.include_result));
      break;
    case RequestType::kCancel:
      v.Set("job_id", JsonValue::Int(static_cast<int64_t>(request.job_id)));
      break;
    case RequestType::kMetrics:
    case RequestType::kHealth:
      break;
  }
  *out = json::Dump(v);
  return Status::OK();
}

Status DecodeRequest(const std::string& payload, Request* out) {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  *out = Request();
  JsonValue v;
  std::string error;
  if (!json::Parse(payload, &v, &error)) {
    return Status::InvalidArgument("malformed request JSON: " + error);
  }
  if (!v.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue* type = v.Find("type");
  if (type == nullptr || !type->is_string()) {
    return Status::InvalidArgument("request needs a string \"type\"");
  }
  PROCLUS_RETURN_NOT_OK(RequestTypeFromName(type->string_value, &out->type));

  switch (out->type) {
    case RequestType::kRegisterDataset: {
      if (const JsonValue* f = v.Find("id")) out->dataset_id = f->AsString();
      if (out->dataset_id.empty()) {
        return Status::InvalidArgument("register_dataset needs \"id\"");
      }
      const JsonValue* values = v.Find("values");
      const JsonValue* generate = v.Find("generate");
      if ((values != nullptr) == (generate != nullptr)) {
        return Status::InvalidArgument(
            "register_dataset needs exactly one of \"values\"/\"generate\"");
      }
      if (values != nullptr) {
        const int64_t rows =
            v.Find("rows") != nullptr ? v.Find("rows")->AsInt() : 0;
        const int64_t cols =
            v.Find("cols") != nullptr ? v.Find("cols")->AsInt() : 0;
        if (rows <= 0 || cols <= 0 || !values->is_array()) {
          return Status::InvalidArgument(
              "register_dataset inline data needs rows > 0, cols > 0 and a "
              "\"values\" array");
        }
        if (static_cast<int64_t>(values->array_value.size()) != rows * cols) {
          return Status::InvalidArgument(
              "register_dataset \"values\" size != rows*cols");
        }
        out->has_inline_data = true;
        out->inline_data = data::Matrix(rows, cols);
        float* data = out->inline_data.data();
        for (int64_t i = 0; i < rows * cols; ++i) {
          data[i] = static_cast<float>(values->array_value[i].AsDouble());
        }
      } else {
        if (!generate->is_object()) {
          return Status::InvalidArgument(
              "register_dataset \"generate\" must be an object");
        }
        out->has_generate = true;
        if (const JsonValue* f = generate->Find("n")) out->generate.n = f->AsInt(out->generate.n);
        if (const JsonValue* f = generate->Find("d")) out->generate.d = static_cast<int>(f->AsInt(out->generate.d));
        if (const JsonValue* f = generate->Find("clusters")) out->generate.clusters = static_cast<int>(f->AsInt(out->generate.clusters));
        if (const JsonValue* f = generate->Find("seed")) out->generate.seed = static_cast<uint64_t>(f->AsInt(static_cast<int64_t>(out->generate.seed)));
        if (const JsonValue* f = generate->Find("normalize")) out->generate.normalize = f->AsBool(true);
        if (out->generate.n <= 0 || out->generate.d <= 0 ||
            out->generate.clusters <= 0) {
          return Status::InvalidArgument(
              "register_dataset generate needs n, d, clusters > 0");
        }
      }
      break;
    }
    case RequestType::kUploadBegin: {
      if (const JsonValue* f = v.Find("id")) out->dataset_id = f->AsString();
      if (out->dataset_id.empty()) {
        return Status::InvalidArgument("upload_begin needs \"id\"");
      }
      if (const JsonValue* f = v.Find("rows")) out->upload_rows = f->AsInt();
      if (const JsonValue* f = v.Find("cols")) out->upload_cols = f->AsInt();
      if (out->upload_rows <= 0 || out->upload_cols <= 0) {
        return Status::InvalidArgument(
            "upload_begin needs rows > 0 and cols > 0");
      }
      break;
    }
    case RequestType::kUploadChunk: {
      if (const JsonValue* f = v.Find("session")) {
        out->upload_session = static_cast<uint64_t>(f->AsInt());
      }
      if (out->upload_session == 0) {
        return Status::InvalidArgument(
            "upload_chunk needs a nonzero \"session\"");
      }
      if (const JsonValue* f = v.Find("offset")) {
        out->upload_offset = f->AsInt();
      }
      if (out->upload_offset < 0) {
        return Status::InvalidArgument("upload_chunk offset must be >= 0");
      }
      if (const JsonValue* f = v.Find("size")) {
        out->chunk_declared_bytes = f->AsInt();
      }
      if (out->chunk_declared_bytes <= 0 ||
          out->chunk_declared_bytes > static_cast<int64_t>(kMaxFrameBytes)) {
        return Status::InvalidArgument(
            "upload_chunk needs a \"size\" in (0, frame limit]");
      }
      break;
    }
    case RequestType::kUploadCommit: {
      if (const JsonValue* f = v.Find("session")) {
        out->upload_session = static_cast<uint64_t>(f->AsInt());
      }
      if (out->upload_session == 0) {
        return Status::InvalidArgument(
            "upload_commit needs a nonzero \"session\"");
      }
      if (const JsonValue* f = v.Find("crc32")) {
        out->upload_crc32 = static_cast<uint32_t>(f->AsInt());
      }
      break;
    }
    case RequestType::kListDatasets:
      break;
    case RequestType::kEvictDataset:
      if (const JsonValue* f = v.Find("id")) out->dataset_id = f->AsString();
      if (out->dataset_id.empty()) {
        return Status::InvalidArgument("evict_dataset needs \"id\"");
      }
      break;
    case RequestType::kEvictResult:
      if (const JsonValue* f = v.Find("cache_key")) {
        out->cache_key = f->AsString();
      }
      if (out->cache_key.empty()) {
        return Status::InvalidArgument("evict_result needs \"cache_key\"");
      }
      break;
    case RequestType::kSubmitSingle:
    case RequestType::kSubmitSweep: {
      if (const JsonValue* f = v.Find("dataset_id")) {
        out->dataset_id = f->AsString();
      }
      if (out->dataset_id.empty()) {
        return Status::InvalidArgument("submit needs \"dataset_id\"");
      }
      DecodeParams(v.Find("params"), &out->params);
      PROCLUS_RETURN_NOT_OK(DecodeOptions(v.Find("options"), &out->options));
      if (const JsonValue* f = v.Find("priority")) {
        const std::string token = f->AsString();
        if (token == "interactive") {
          out->priority = service::JobPriority::kInteractive;
        } else if (token == "bulk" || token.empty()) {
          out->priority = service::JobPriority::kBulk;
        } else {
          return Status::InvalidArgument("unknown priority: " + token);
        }
      }
      if (const JsonValue* f = v.Find("timeout_ms")) {
        out->timeout_ms = f->AsDouble();
        if (out->timeout_ms < 0.0) {
          return Status::InvalidArgument("timeout_ms must be >= 0");
        }
      }
      if (const JsonValue* f = v.Find("wait")) out->wait = f->AsBool(true);
      if (out->type == RequestType::kSubmitSweep) {
        const JsonValue* settings = v.Find("settings");
        if (settings == nullptr || !settings->is_array() ||
            settings->array_value.empty()) {
          return Status::InvalidArgument(
              "submit_sweep needs a non-empty \"settings\" array");
        }
        for (const JsonValue& setting : settings->array_value) {
          core::ParamSetting s;
          if (const JsonValue* f = setting.Find("k")) s.k = static_cast<int>(f->AsInt(s.k));
          if (const JsonValue* f = setting.Find("l")) s.l = static_cast<int>(f->AsInt(s.l));
          out->sweep.settings.push_back(s);
        }
        if (const JsonValue* f = v.Find("reuse")) {
          PROCLUS_RETURN_NOT_OK(
              ReuseFromToken(f->AsString(), &out->sweep.reuse));
        }
        if (const JsonValue* f = v.Find("max_shards")) {
          out->sweep.max_shards = static_cast<int>(f->AsInt(0));
          if (out->sweep.max_shards < 0) {
            return Status::InvalidArgument("max_shards must be >= 0");
          }
        }
      }
      break;
    }
    case RequestType::kStatus:
      if (const JsonValue* f = v.Find("job_id")) {
        out->job_id = static_cast<uint64_t>(f->AsInt());
      }
      if (out->job_id == 0) {
        return Status::InvalidArgument("status needs a nonzero \"job_id\"");
      }
      if (const JsonValue* f = v.Find("include_result")) {
        out->include_result = f->AsBool(true);
      }
      break;
    case RequestType::kCancel:
      if (const JsonValue* f = v.Find("job_id")) {
        out->job_id = static_cast<uint64_t>(f->AsInt());
      }
      if (out->job_id == 0) {
        return Status::InvalidArgument("cancel needs a nonzero \"job_id\"");
      }
      break;
    case RequestType::kMetrics:
    case RequestType::kHealth:
      break;
  }
  return Status::OK();
}

// --- responses ---------------------------------------------------------------

Status WireError::ToStatus() const {
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, message);
}

WireError WireError::FromStatus(const Status& status) {
  WireError error;
  error.code = status.code();
  error.message = status.message();
  error.retryable = IsRetryableCode(status.code());
  return error;
}

Status EncodeResponse(const Response& response, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  JsonValue v = JsonValue::Object();
  v.Set("type", JsonValue::Str("response"));
  v.Set("request", JsonValue::Str(RequestTypeName(response.request)));
  v.Set("ok", JsonValue::Bool(response.ok));
  if (!response.ok) {
    JsonValue error = JsonValue::Object();
    error.Set("code", JsonValue::Str(WireCodeName(response.error.code)));
    error.Set("message", JsonValue::Str(response.error.message));
    error.Set("retryable", JsonValue::Bool(response.error.retryable));
    v.Set("error", std::move(error));
  }
  if (response.job_id != 0) {
    v.Set("job_id", JsonValue::Int(static_cast<int64_t>(response.job_id)));
  }
  if (!response.phase.empty()) {
    v.Set("phase", JsonValue::Str(response.phase));
  }
  if (response.has_result) {
    v.Set("result", EncodeWireJobResult(response.result));
  }
  if (response.request == RequestType::kMetrics && response.ok) {
    v.Set("metrics", response.metrics);
  }
  if (response.has_health) {
    const WireHealth& h = response.health;
    JsonValue health = JsonValue::Object();
    health.Set("queue_depth", JsonValue::Int(h.queue_depth));
    health.Set("queue_capacity", JsonValue::Int(h.queue_capacity));
    health.Set("active_connections", JsonValue::Int(h.active_connections));
    health.Set("max_connections", JsonValue::Int(h.max_connections));
    health.Set("devices_total", JsonValue::Int(h.devices_total));
    health.Set("devices_leased", JsonValue::Int(h.devices_leased));
    health.Set("draining", JsonValue::Bool(h.draining));
    if (h.faults_injected_total > 0) {
      health.Set("faults_injected_total",
                 JsonValue::Int(h.faults_injected_total));
    }
    health.Set("store_datasets", JsonValue::Int(h.store_datasets));
    health.Set("store_resident_bytes",
               JsonValue::Int(h.store_resident_bytes));
    health.Set("store_evictions", JsonValue::Int(h.store_evictions));
    health.Set("store_upload_bytes_total",
               JsonValue::Int(h.store_upload_bytes_total));
    health.Set("cache_entries", JsonValue::Int(h.cache_entries));
    health.Set("cache_bytes", JsonValue::Int(h.cache_bytes));
    health.Set("cache_hits", JsonValue::Int(h.cache_hits));
    health.Set("cache_misses", JsonValue::Int(h.cache_misses));
    health.Set("cache_inserts", JsonValue::Int(h.cache_inserts));
    health.Set("cache_evictions", JsonValue::Int(h.cache_evictions));
    health.Set("cache_dedup_joins", JsonValue::Int(h.cache_dedup_joins));
    v.Set("health", std::move(health));
  }
  if (response.upload_session != 0) {
    v.Set("session",
          JsonValue::Int(static_cast<int64_t>(response.upload_session)));
  }
  if (!response.dataset_hash.empty()) {
    v.Set("hash", JsonValue::Str(response.dataset_hash));
    v.Set("deduped", JsonValue::Bool(response.deduped));
  }
  if (response.request == RequestType::kEvictResult && response.ok) {
    v.Set("evicted", JsonValue::Bool(response.evicted));
  }
  if (response.has_datasets) {
    JsonValue datasets = JsonValue::Array();
    for (const WireDatasetInfo& info : response.datasets) {
      JsonValue d = JsonValue::Object();
      d.Set("id", JsonValue::Str(info.id));
      d.Set("hash", JsonValue::Str(info.hash));
      d.Set("rows", JsonValue::Int(info.rows));
      d.Set("cols", JsonValue::Int(info.cols));
      d.Set("bytes", JsonValue::Int(info.bytes));
      d.Set("resident", JsonValue::Bool(info.resident));
      d.Set("pinned", JsonValue::Bool(info.pinned));
      datasets.Append(std::move(d));
    }
    v.Set("datasets", std::move(datasets));
  }
  *out = json::Dump(v);
  return Status::OK();
}

Status DecodeResponse(const std::string& payload, Response* out) {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  *out = Response();
  JsonValue v;
  std::string error;
  if (!json::Parse(payload, &v, &error)) {
    return Status::InvalidArgument("malformed response JSON: " + error);
  }
  if (!v.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  if (const JsonValue* f = v.Find("request")) {
    // Tolerant: an unknown echoed type only matters for logging.
    RequestType type;
    if (RequestTypeFromName(f->AsString(), &type).ok()) out->request = type;
  }
  if (const JsonValue* f = v.Find("ok")) out->ok = f->AsBool();
  if (!out->ok) {
    if (const JsonValue* e = v.Find("error"); e != nullptr && e->is_object()) {
      if (const JsonValue* f = e->Find("code")) {
        out->error.code = WireCodeFromName(f->AsString());
      }
      if (const JsonValue* f = e->Find("message")) {
        out->error.message = f->AsString();
      }
      if (const JsonValue* f = e->Find("retryable")) {
        out->error.retryable = f->AsBool();
      }
    } else {
      out->error.code = StatusCode::kInternal;
      out->error.message = "response carried no error object";
    }
  }
  if (const JsonValue* f = v.Find("job_id")) {
    out->job_id = static_cast<uint64_t>(f->AsInt());
  }
  if (const JsonValue* f = v.Find("phase")) out->phase = f->AsString();
  if (const JsonValue* f = v.Find("result"); f != nullptr && f->is_object()) {
    out->has_result = true;
    out->result = DecodeWireJobResult(*f);
  }
  if (const JsonValue* f = v.Find("metrics")) out->metrics = *f;
  if (const JsonValue* h = v.Find("health"); h != nullptr && h->is_object()) {
    out->has_health = true;
    WireHealth& health = out->health;
    if (const JsonValue* f = h->Find("queue_depth")) health.queue_depth = f->AsInt();
    if (const JsonValue* f = h->Find("queue_capacity")) health.queue_capacity = f->AsInt();
    if (const JsonValue* f = h->Find("active_connections")) health.active_connections = static_cast<int>(f->AsInt());
    if (const JsonValue* f = h->Find("max_connections")) health.max_connections = static_cast<int>(f->AsInt());
    if (const JsonValue* f = h->Find("devices_total")) health.devices_total = static_cast<int>(f->AsInt());
    if (const JsonValue* f = h->Find("devices_leased")) health.devices_leased = static_cast<int>(f->AsInt());
    if (const JsonValue* f = h->Find("draining")) health.draining = f->AsBool();
    if (const JsonValue* f = h->Find("faults_injected_total")) {
      health.faults_injected_total = f->AsInt();
    }
    if (const JsonValue* f = h->Find("store_datasets")) health.store_datasets = f->AsInt();
    if (const JsonValue* f = h->Find("store_resident_bytes")) health.store_resident_bytes = f->AsInt();
    if (const JsonValue* f = h->Find("store_evictions")) health.store_evictions = f->AsInt();
    if (const JsonValue* f = h->Find("store_upload_bytes_total")) {
      health.store_upload_bytes_total = f->AsInt();
    }
    if (const JsonValue* f = h->Find("cache_entries")) health.cache_entries = f->AsInt();
    if (const JsonValue* f = h->Find("cache_bytes")) health.cache_bytes = f->AsInt();
    if (const JsonValue* f = h->Find("cache_hits")) health.cache_hits = f->AsInt();
    if (const JsonValue* f = h->Find("cache_misses")) health.cache_misses = f->AsInt();
    if (const JsonValue* f = h->Find("cache_inserts")) health.cache_inserts = f->AsInt();
    if (const JsonValue* f = h->Find("cache_evictions")) health.cache_evictions = f->AsInt();
    if (const JsonValue* f = h->Find("cache_dedup_joins")) health.cache_dedup_joins = f->AsInt();
  }
  if (const JsonValue* f = v.Find("session")) {
    out->upload_session = static_cast<uint64_t>(f->AsInt());
  }
  if (const JsonValue* f = v.Find("hash")) out->dataset_hash = f->AsString();
  if (const JsonValue* f = v.Find("deduped")) out->deduped = f->AsBool();
  if (const JsonValue* f = v.Find("evicted")) out->evicted = f->AsBool();
  if (const JsonValue* d = v.Find("datasets"); d != nullptr && d->is_array()) {
    out->has_datasets = true;
    out->datasets.reserve(d->array_value.size());
    for (const JsonValue& element : d->array_value) {
      WireDatasetInfo info;
      if (const JsonValue* f = element.Find("id")) info.id = f->AsString();
      if (const JsonValue* f = element.Find("hash")) info.hash = f->AsString();
      if (const JsonValue* f = element.Find("rows")) info.rows = f->AsInt();
      if (const JsonValue* f = element.Find("cols")) info.cols = f->AsInt();
      if (const JsonValue* f = element.Find("bytes")) info.bytes = f->AsInt();
      if (const JsonValue* f = element.Find("resident")) info.resident = f->AsBool();
      if (const JsonValue* f = element.Find("pinned")) info.pinned = f->AsBool();
      out->datasets.push_back(std::move(info));
    }
  }
  return Status::OK();
}

}  // namespace proclus::net
