#ifndef PROCLUS_NET_CLIENT_H_
#define PROCLUS_NET_CLIENT_H_

// ProclusClient: a small blocking client over the framed wire protocol.
// One client wraps one connection and is not thread-safe — the protocol is
// strictly request/response per connection, so concurrent callers must
// each hold their own client (that is what proclus_loadgen does).
//
// Call() reports *transport* problems in its Status; the server's answer —
// including "ok":false application errors such as a retryable
// RESOURCE_EXHAUSTED — lands in the Response for the caller to inspect.
// The convenience wrappers collapse the two layers: they return the
// server-side error as a Status when the response is not ok.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/multi_param.h"
#include "core/params.h"
#include "data/matrix.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace proclus::net {

class ProclusClient {
 public:
  ProclusClient() = default;
  ~ProclusClient() { Close(); }

  ProclusClient(const ProclusClient&) = delete;
  ProclusClient& operator=(const ProclusClient&) = delete;
  ProclusClient(ProclusClient&&) = default;
  ProclusClient& operator=(ProclusClient&&) = default;

  // Connects to a ProclusServer. Reconnecting an already connected client
  // closes the old connection first.
  Status Connect(const std::string& host, int port);
  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

  // One round trip: encode `request`, send it, receive and decode the
  // response. The returned Status covers encoding and transport only;
  // check `response->ok` / `response->error` for the server's verdict.
  Status Call(const Request& request, Response* response);

  // --- conveniences (application errors folded into the Status) ----------

  Status RegisterDataset(const std::string& id, const data::Matrix& points);
  Status RegisterGenerated(const std::string& id, const GenerateSpec& spec);

  // Wait-mode submits: block until the server ships the finished job.
  Status SubmitSingle(const Request& request, WireJobResult* result);
  Status SubmitSweep(const Request& request, WireJobResult* result);

  // Async submits: returns the server-assigned job id immediately.
  Status SubmitAsync(const Request& request, uint64_t* job_id);
  Status GetStatus(uint64_t job_id, bool include_result, Response* response);
  Status Cancel(uint64_t job_id);

  // Snapshot of the server's metrics registry ("net.*" + "service.*").
  Status FetchMetrics(json::JsonValue* metrics);

 private:
  Status CallChecked(const Request& request, Response* response);

  Socket socket_;
};

}  // namespace proclus::net

#endif  // PROCLUS_NET_CLIENT_H_
