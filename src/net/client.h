#ifndef PROCLUS_NET_CLIENT_H_
#define PROCLUS_NET_CLIENT_H_

// ProclusClient: a small blocking client over the framed wire protocol.
// One client wraps one connection and is not thread-safe — the protocol is
// strictly request/response per connection, so concurrent callers must
// each hold their own client (that is what proclus_loadgen does).
//
// Call() reports *transport* problems in its Status; the server's answer —
// including "ok":false application errors such as a retryable
// RESOURCE_EXHAUSTED — lands in the Response for the caller to inspect.
// The convenience wrappers collapse the two layers: they return the
// server-side error as a Status when the response is not ok.
//
// With a RetryPolicy installed (set_retry_policy), failed calls are
// retried with backoff: retryable application errors always; transport
// errors only when the request is idempotent (IsIdempotentRequest) —
// after a transport error the connection is poisoned, so the client
// reconnects to the remembered host:port before resending. The
// conveniences route through CallWithRetry, so a policy makes every
// wrapper retry transparently; the default policy (max_retries = 0)
// keeps the old single-attempt behavior.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/multi_param.h"
#include "core/params.h"
#include "data/matrix.h"
#include "net/protocol.h"
#include "net/retry.h"
#include "net/socket.h"

namespace proclus::net {

class ProclusClient {
 public:
  ProclusClient() = default;
  ~ProclusClient() { Close(); }

  ProclusClient(const ProclusClient&) = delete;
  ProclusClient& operator=(const ProclusClient&) = delete;
  ProclusClient(ProclusClient&&) = default;
  ProclusClient& operator=(ProclusClient&&) = default;

  // Connects to a ProclusServer. Reconnecting an already connected client
  // closes the old connection first.
  Status Connect(const std::string& host, int port);
  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

  // One round trip: encode `request`, send it, receive and decode the
  // response. The returned Status covers encoding and transport only;
  // check `response->ok` / `response->error` for the server's verdict.
  Status Call(const Request& request, Response* response);

  // Call() under the installed RetryPolicy. Same contract as Call —
  // transport give-up returns the transport Status; a retryable
  // application error that outlives the policy returns OK with the
  // error-bearing response. With retries disabled this is exactly Call().
  Status CallWithRetry(const Request& request, Response* response);

  // Installs the retry policy for CallWithRetry and every convenience
  // wrapper. InvalidArgument (and no change) when the policy is malformed.
  Status set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  // Cumulative counters across this client's retried calls.
  const RetryStats& retry_stats() const { return retry_stats_; }

  // --- conveniences (application errors folded into the Status) ----------

  Status RegisterDataset(const std::string& id, const data::Matrix& points);
  Status RegisterGenerated(const std::string& id, const GenerateSpec& spec);

  // Streams `points` to the server over the chunked binary path
  // (upload_begin / upload_chunk / upload_commit): raw little-endian
  // float32 frames of at most `chunk_bytes` each, then a commit carrying
  // the payload's CRC32. This is the way to ship anything big — inline
  // RegisterDataset fails once its JSON encoding would exceed the frame
  // limit. On success optionally reports the server's content hash (16 hex
  // digits) and whether the content was already stored (deduplicated).
  // chunk_bytes <= 0 picks the default (4 MiB).
  Status UploadDataset(const std::string& id, const data::Matrix& points,
                       int64_t chunk_bytes = 0, std::string* hash = nullptr,
                       bool* deduped = nullptr);

  // Enumerates the server's dataset store.
  Status ListDatasets(std::vector<WireDatasetInfo>* datasets);
  // Drops a dataset from the server's store; FailedPrecondition while
  // in-flight jobs pin it.
  Status EvictDataset(const std::string& id);
  // Drops one cached clustering result by its cache_key (the 16-hex-digit
  // handle in WireJobResult::cache_key). `*evicted` (optional) reports
  // whether an entry was found; a server without a cache answers OK/false.
  Status EvictResult(const std::string& cache_key, bool* evicted = nullptr);

  // Wait-mode submits: block until the server ships the finished job.
  Status SubmitSingle(const Request& request, WireJobResult* result);
  Status SubmitSweep(const Request& request, WireJobResult* result);

  // Async submits: returns the server-assigned job id immediately.
  Status SubmitAsync(const Request& request, uint64_t* job_id);
  Status GetStatus(uint64_t job_id, bool include_result, Response* response);
  Status Cancel(uint64_t job_id);

  // Snapshot of the server's metrics registry ("net.*" + "service.*").
  Status FetchMetrics(json::JsonValue* metrics);

  // The server's health snapshot (queue depth, device saturation, drain
  // state) — cheap enough to poll.
  Status FetchHealth(WireHealth* health);

 private:
  Status CallChecked(const Request& request, Response* response);

  Socket socket_;
  // Remembered from Connect() so CallWithRetry can reconnect after a
  // transport error poisons the connection.
  std::string host_;
  int port_ = 0;

  RetryPolicy retry_policy_;
  RetryStats retry_stats_;
  // Distinct backoff stream per logical call (deterministic jitter).
  uint64_t call_sequence_ = 0;
};

}  // namespace proclus::net

#endif  // PROCLUS_NET_CLIENT_H_
