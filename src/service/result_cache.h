#ifndef PROCLUS_SERVICE_RESULT_CACHE_H_
#define PROCLUS_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/api.h"
#include "core/multi_param.h"
#include "core/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/job.h"

namespace proclus::service {

struct ResultCacheOptions {
  // In-memory budget across cached payloads; 0 disables residency limits
  // (nothing is ever evicted). When an insert pushes the total past the
  // budget, least-recently-used entries are spilled to `dir` (if set) and
  // dropped until the total fits.
  int64_t budget_bytes = 0;
  // Directory evicted results spill to as content-addressed `<hash>.pcr`
  // files (next to the dataset store's `.pds` files in a typical
  // deployment). Empty = memory-only: evicted results are simply dropped —
  // unlike datasets, results are recomputable, so dropping loses time, not
  // data.
  std::string dir;
  // Optional recorder for "cache" category spans (lookup/insert/spill/load).
  obs::TraceRecorder* trace = nullptr;
};

// Content address of one clustering request: the dataset's 64-bit content
// hash (store::DatasetStore::ContentHash) combined with the canonical text
// of every request field that could shape the result (core/canonical.h).
// `text` is the full canonical line and is the cache's identity — exact
// string match, so hash collisions can never alias two requests. `hash` is
// FNV-1a of `text`; it names the spill file and is what crosses the wire as
// the `cache_key` hex string.
struct ResultCacheKey {
  uint64_t hash = 0;
  std::string text;

  bool valid() const { return !text.empty(); }
  // 16 lowercase hex digits of `hash`.
  std::string Hex() const;
};

// What the cache stores per key: the bit-exact clustering output(s). Run
// statistics and timings are deliberately not part of the payload — a hit
// reports its own (near-zero) timings, while medoids/dimensions/assignment/
// costs are byte-identical to the cold run's.
struct CachedResult {
  // kSingle: exactly one entry. kSweep: one per setting, in input order.
  std::vector<core::ProclusResult> results;
  // kSweep: wall-clock seconds per setting from the cold run (the §5.3
  // figure callers chart); empty for kSingle.
  std::vector<double> setting_seconds;

  // Payload size estimate used for budget accounting.
  int64_t EstimateBytes() const;
};

// Monotonic cache counters plus current occupancy, readable at any time.
struct ResultCacheStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t hits = 0;         // resident or spill-reloaded lookups
  int64_t misses = 0;       // lookups that started a new flight
  int64_t inserts = 0;
  int64_t evictions = 0;
  int64_t dedup_joins = 0;  // lookups that joined an in-flight computation
  int64_t spills = 0;       // .pcr files written
  int64_t disk_loads = 0;   // hits served through a .pcr reload
};

// Content-addressed cache of clustering results with single-flight
// deduplication, shared by all of a ProclusService's workers and submitting
// threads.
//
// Lookup/insert discipline (the service's side of the contract):
//   - Submit calls AdmitOrJoin once per cacheable job. kHit hands back the
//     payload immediately; kJoined parks a waiter on the in-flight leader;
//     kLead makes this job the leader — it MUST eventually call
//     FinishFlight exactly once (success or failure), or joiners hang.
//   - FinishFlight with an OK status + payload inserts the payload (this is
//     the only insert path — results enter the cache inside the leader
//     job's terminal transition, never half-done) and fans it out to every
//     waiter. A non-OK status (failed / cancelled / timed out / sanitizer
//     findings) caches nothing and fans the status out.
//
// Soundness rests on the determinism contract (core/api.h): a fixed
// (dataset, params, options) input yields one bit-exact output on every
// backend, so serving a stored result is indistinguishable from re-running.
//
// Thread-safety: all public methods are safe to call concurrently. One
// mutex guards the index and the flight table; waiters are always invoked
// with no cache lock held. The mutex is a near-leaf in the lock hierarchy
// (docs/concurrency.md): Submit and the job terminal path call in with no
// job/queue lock held, and the only locks taken under it are the obs
// leaves (spill/load spans).
class ResultCache {
 public:
  // Receives the flight outcome: OK + payload on success, the leader's
  // terminal status + null payload otherwise. Runs on the thread that
  // finished the leader (a worker or a canceller) — keep it short.
  using Waiter =
      std::function<void(const Status&, std::shared_ptr<const CachedResult>)>;

  // Outcome of AdmitOrJoin.
  enum class Admission { kHit, kJoined, kLead };

  explicit ResultCache(ResultCacheOptions options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Builds the content address for one job shape. `sweep` is folded in only
  // for kSweep. Deterministic across processes and runs.
  static ResultCacheKey MakeKey(uint64_t dataset_hash, JobKind kind,
                                const core::ProclusParams& params,
                                const core::ClusterOptions& options,
                                const core::SweepSpec& sweep);

  // Single atomic lookup-or-join-or-lead (one lock acquisition, so a
  // concurrent FinishFlight can never slip between a lookup and a join):
  //   kHit    — `*hit` is set; `waiter` is not retained.
  //   kJoined — an identical job is in flight; `waiter` fires when it
  //             finishes. `*hit` untouched.
  //   kLead   — no cached entry and no flight; the caller is now the
  //             leader and must call FinishFlight. `waiter` not retained.
  // A miss probes `<dir>/<hash>.pcr` when a spill directory is configured;
  // a valid spill file counts as a hit (disk_loads) and re-enters memory.
  Admission AdmitOrJoin(const ResultCacheKey& key,
                        std::shared_ptr<const CachedResult>* hit,
                        Waiter waiter) EXCLUDES(mutex_);

  // Terminates the flight for `key`: inserts `payload` when `status` is OK
  // and payload is non-null, then invokes every parked waiter (outside the
  // cache lock). Exactly one call per kLead admission. Safe when the key
  // has no flight (e.g. the cache raced an EvictByHex) — waiterless inserts
  // still happen.
  void FinishFlight(const ResultCacheKey& key, const Status& status,
                    std::shared_ptr<const CachedResult> payload)
      EXCLUDES(mutex_);

  // Drops the entry whose key hashes to `hex` (16 hex digits, as reported
  // in JobResult::cache_key), including its spill file. `*evicted` reports
  // whether anything was found. kInvalidArgument for malformed hex.
  // In-flight computations are unaffected (their insert simply lands as a
  // fresh entry).
  Status EvictByHex(const std::string& hex, bool* evicted) EXCLUDES(mutex_);

  ResultCacheStats stats() const EXCLUDES(mutex_);

  // Publishes the `service.cache.*` metrics family: entries/bytes gauges
  // plus hits/misses/inserts/evictions/dedup_joins/spills/disk_loads
  // counters (docs/observability.md). Names are literal, not
  // prefix-composed, so the prolint metric-taxonomy rule pins each one to
  // its documentation row.
  void PublishMetrics(obs::MetricsRegistry* registry) const EXCLUDES(mutex_);

  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> payload;
    int64_t bytes = 0;
    bool on_disk = false;
    uint64_t last_use = 0;
  };
  struct Flight {
    std::vector<Waiter> waiters;
  };

  std::string PathForHash(uint64_t hash) const;
  // Inserts `payload` under `key` (replacing any previous entry) and
  // enforces the budget.
  void InsertLocked(const ResultCacheKey& key,
                    std::shared_ptr<const CachedResult> payload)
      REQUIRES(mutex_);
  // Spills + drops LRU entries until the resident bytes fit the budget.
  void EnforceBudgetLocked() REQUIRES(mutex_);
  // Writes `<dir>/<hash(text)>.pcr` for the entry if absent.
  void SpillLocked(const std::string& text, Entry* entry) REQUIRES(mutex_);
  // Probes the spill file for `key`; re-inserts and returns the payload on
  // success, null on absence or corruption (corruption = miss, the file is
  // removed so the slot heals on the next insert).
  std::shared_ptr<const CachedResult> LoadSpillLocked(
      const ResultCacheKey& key) REQUIRES(mutex_);

  const ResultCacheOptions options_;

  mutable Mutex mutex_;
  // Keyed by the full canonical text (exact identity, collision-proof).
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, Flight> flights_ GUARDED_BY(mutex_);
  int64_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t use_clock_ GUARDED_BY(mutex_) = 0;  // LRU timestamps
  ResultCacheStats counters_ GUARDED_BY(mutex_);
};

// Serialization of one CachedResult as a `.pcr` ("proclus cached result")
// file, version 1: a fixed 32-byte little-endian header followed by a
// line-oriented text payload.
//
//   offset  size  field
//   0       4     magic "PCR1"
//   4       4     uint32 format version (currently 1)
//   8       8     uint64 cache-key hash (must match the requested key)
//   16      8     int64  payload bytes
//   24      4     uint32 CRC32 (IEEE) of the payload bytes
//   28      4     reserved, must be zero
//
// Payload:
//   proclus-cached-result v1
//   key <canonical key text>
//   results <count>
//   <core::WriteResult block> x count      (core/serialization.h)
//   setting_seconds <s0> ... <s{count-1}>  (%.17g; absent when empty)
//
// Readers verify magic/version/size/CRC and that the embedded key text
// equals the key being looked up, so a hash collision or a renamed file can
// never serve a wrong clustering. Writes go to `path + ".tmp"` first and
// rename into place (the `.pds` pattern — store/pds_format.h).
inline constexpr char kPcrMagic[4] = {'P', 'C', 'R', '1'};
inline constexpr uint32_t kPcrVersion = 1;
inline constexpr size_t kPcrHeaderBytes = 32;
inline constexpr const char* kPcrExtension = ".pcr";

// Exposed for tests: file-level write/read of the spill format.
Status WritePcr(const ResultCacheKey& key, const CachedResult& payload,
                const std::string& path);
Status ReadPcr(const std::string& path, const ResultCacheKey& key,
               CachedResult* payload);

}  // namespace proclus::service

#endif  // PROCLUS_SERVICE_RESULT_CACHE_H_
