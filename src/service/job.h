#ifndef PROCLUS_SERVICE_JOB_H_
#define PROCLUS_SERVICE_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/api.h"
#include "core/multi_param.h"
#include "core/params.h"
#include "core/result.h"
#include "data/matrix.h"

namespace proclus::service {

// Scheduling class of a job. Interactive jobs (the paper's §5.3
// exploration scenario: an analyst waiting at a console) overtake every
// queued bulk job; within a class the queue is FIFO.
enum class JobPriority { kInteractive, kBulk };

// What a job computes: one clustering run, or a multi-parameter (k,l) sweep
// sharing work between settings (§3.1).
enum class JobKind { kSingle, kSweep };

// Lifecycle of a job. Terminal phases: kDone, kCancelled, kTimedOut,
// kFailed.
enum class JobPhase { kQueued, kRunning, kDone, kCancelled, kTimedOut,
                      kFailed };

const char* JobPhaseName(JobPhase phase);

// A unit of work for ProclusService::Submit. The dataset is referenced
// either by pointer (`data`, must stay alive until the job finishes) or by
// the id of a dataset previously registered with RegisterDataset (the
// service then keeps it alive).
struct JobSpec {
  JobKind kind = JobKind::kSingle;

  const data::Matrix* data = nullptr;
  std::string dataset_id;

  core::ProclusParams params;
  // Backend/strategy/knobs for the run. `device`, `pool`, `cancel` and
  // `trace` must be left null: the service owns the long-lived resources,
  // the stop signal, and the trace recorder (ServiceOptions.trace). With
  // backend kMultiCore and num_threads == 0 the job runs on the service's
  // shared compute pool.
  core::ClusterOptions options;

  // kSweep only: the sweep request — settings, reuse level, and the shard
  // budget for the multi-device sweep scheduler (see core::SweepSpec).
  core::SweepSpec sweep;

  JobPriority priority = JobPriority::kBulk;
  // Deadline measured from submission, covering queue wait + execution.
  // 0 = use the service default; the default 0 means no deadline.
  double timeout_seconds = 0.0;
  // When the service has a trace recorder (ServiceOptions.trace), this job
  // participates in it: queue-wait and run spans plus the run's driver /
  // backend / device events. Set false to keep a job out of the trace.
  bool trace = true;

  // Named constructors for the two kinds.
  static JobSpec Single(const data::Matrix& data,
                        const core::ProclusParams& params,
                        const core::ClusterOptions& options);
  static JobSpec Sweep(const data::Matrix& data,
                       const core::ProclusParams& base, core::SweepSpec sweep,
                       const core::ClusterOptions& options);
};

// Outcome of a job, valid once the job reached a terminal phase.
struct JobResult {
  // OK for kDone; Cancelled / DeadlineExceeded / the failure otherwise.
  Status status;
  // kSingle: exactly one entry. kSweep: one per setting, in input order.
  // Empty when status is not OK.
  std::vector<core::ProclusResult> results;
  // kSweep: wall-clock seconds per setting.
  std::vector<double> setting_seconds;
  // Seconds spent queued before a worker picked the job up.
  double queue_seconds = 0.0;
  // Seconds spent executing (excludes queue wait).
  double exec_seconds = 0.0;
  // GPU jobs: modeled device seconds for this job alone.
  double modeled_gpu_seconds = 0.0;
  // GPU jobs: the pooled device had already run a job (warm arena).
  bool warm_device = false;
  // GPU jobs on a sanitizing service (ServiceOptions::sanitize_devices):
  // simtcheck findings attributed to this job, the number of accesses the
  // checker validated (> 0 proves the job really ran in checked mode), and
  // the detailed violation reports. A job with findings > 0 finishes
  // kFailed with an internal-error status; the reports say exactly what
  // fired where.
  int64_t sanitizer_findings = 0;
  int64_t sanitizer_checked_accesses = 0;
  std::vector<std::string> sanitizer_reports;
  // GPU sweeps: devices the sweep scheduler ran the shards on (1 means the
  // sweep executed serially — a single lease, or a CPU sweep). 0 for
  // single jobs.
  int sweep_shards = 0;
  // Global start order among all jobs of the service (-1 if never started);
  // lets callers observe scheduling, e.g. interactive-overtakes-bulk.
  int64_t start_sequence = -1;
  // Result-cache provenance (docs/serving.md). `cache_key` is the
  // 16-hex-digit content address of (dataset hash, params, options[, sweep])
  // whenever the service has a result cache and the job was cacheable —
  // on the cold run that populated the cache as well as on hits.
  // `cache_hit` is true when this result was served from the cache (or by
  // joining an identical in-flight job) instead of executing. Both stay at
  // their defaults when caching is off.
  bool cache_hit = false;
  std::string cache_key;
};

namespace internal {
struct Job;
struct SharedStats;
}  // namespace internal

// Caller-side view of a submitted job. Cheap to copy (shared state). A
// default-constructed handle is empty; Submit fills in a live one.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return job_ != nullptr; }
  uint64_t id() const;
  JobPhase phase() const;

  // Blocks until the job reaches a terminal phase and returns its result.
  // The reference stays valid while any handle to the job exists.
  const JobResult& Wait() const;

  // Returns the result if the job already finished, nullptr otherwise.
  const JobResult* TryGet() const;

  // Registers a callback invoked exactly once when the job reaches a
  // terminal phase, with the final JobResult (valid while any handle to
  // the job exists). A job that is already terminal invokes the callback
  // synchronously before OnComplete returns; otherwise it runs on the
  // thread that finishes the job (a service worker or a canceller) — keep
  // callbacks short and never call back into ProclusService::Shutdown or
  // JobHandle::Wait from one. This is the push-style alternative to
  // polling TryGet()/blocking in Wait(); the net/ server uses it to write
  // wire responses as jobs complete.
  void OnComplete(std::function<void(const JobResult&)> callback) const;

  // Requests cooperative cancellation. A still-queued job is cancelled
  // immediately; a running job stops at the next cancellation point and
  // finishes with StatusCode::kCancelled. Idempotent; never blocks.
  void Cancel();

 private:
  friend class ProclusService;
  explicit JobHandle(std::shared_ptr<internal::Job> job)
      : job_(std::move(job)) {}

  std::shared_ptr<internal::Job> job_;
};

}  // namespace proclus::service

#endif  // PROCLUS_SERVICE_JOB_H_
