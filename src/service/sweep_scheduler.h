#ifndef PROCLUS_SERVICE_SWEEP_SCHEDULER_H_
#define PROCLUS_SERVICE_SWEEP_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/api.h"
#include "core/multi_param.h"
#include "data/matrix.h"
#include "service/device_pool.h"

namespace proclus::service {

// Executes one multi-param sweep across the warm device pool: the plan's
// shards (src/core/sweep_plan.h) are distributed round-robin over up to
// `sweep.max_shards` concurrently leased devices, while the reuse-level
// artifacts (Data', the greedy start, the pool M sized for the largest k)
// are prepared once and shared read-only by every shard.
//
// The scheduler is opportunistic: it leases the devices that are idle right
// now (at least one, blocking interruptibly if the pool is fully leased)
// rather than waiting for the full shard budget — a sweep never stalls
// behind single jobs just to go wider. Sharded output is bit-identical to
// the serial core::RunMultiParam for the same seed at every ReuseLevel:
// per-setting seeds depend only on the input index, the shared artifacts
// depend only on base.seed and the largest k, warm-start chains live
// entirely inside one shard, and Dist/H cache state never changes results.
//
// Deliberately lock-free (no Mutex, no GUARDED_BY): each lane thread writes
// only its own disjoint shard-status/result slots, the watcher counts
// finished lanes through an atomic, and Run() joins every lane thread
// before reading their output — the joins are the synchronization. Adding
// state shared between lanes requires a Mutex and annotations
// (docs/concurrency.md).
class SweepScheduler {
 public:
  // `pool` must outlive the scheduler. GPU sweeps only — CPU sweeps have no
  // pooled engine to shard over and stay with core::RunMultiParam.
  explicit SweepScheduler(DevicePool* pool) : pool_(pool) {}

  struct Outcome {
    core::MultiParamResult result;
    // Devices this sweep actually ran on (1 = effectively serial).
    int shards_used = 0;
    // Sum of the leased devices' modeled device time for this sweep, plus
    // the per-lane breakdown (the largest entry is the sweep's modeled
    // critical path — what a real multi-GPU wall clock would show).
    double modeled_gpu_seconds = 0.0;
    std::vector<double> lane_modeled_seconds;
    // Every leased device had a warm arena.
    bool warm_device = false;
    int64_t sanitizer_findings = 0;
    int64_t sanitizer_checked_accesses = 0;
    std::vector<std::string> sanitizer_reports;
  };

  // Runs the sweep. `cluster` must use ComputeBackend::kGpu with a null
  // device (the scheduler leases devices itself); cluster.cancel and
  // cluster.trace are honored — cancellation/deadline propagates to every
  // shard, and each shard emits a "sweep.shard" span plus its kernel events
  // on the leased device's trace track. On any non-OK return
  // outcome->result is reset to the empty state, like core::RunMultiParam.
  Status Run(const data::Matrix& data, const core::ProclusParams& base,
             const core::SweepSpec& sweep,
             const core::ClusterOptions& cluster, Outcome* outcome);

 private:
  DevicePool* const pool_;
};

}  // namespace proclus::service

#endif  // PROCLUS_SERVICE_SWEEP_SCHEDULER_H_
