#include "service/result_cache.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "core/canonical.h"
#include "core/serialization.h"
#include "store/pds_format.h"

namespace proclus::service {
namespace {

void PutU32(unsigned char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

void PutU64(unsigned char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

uint32_t GetU32(const unsigned char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const unsigned char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

std::string HexOf(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return std::string(buf, 16);
}

// Text payload of a .pcr file (see result_cache.h for the format).
std::string EncodePayload(const ResultCacheKey& key,
                          const CachedResult& payload) {
  std::ostringstream out;
  out << "proclus-cached-result v1\n";
  out << "key " << key.text << "\n";
  out << "results " << payload.results.size() << "\n";
  for (const core::ProclusResult& r : payload.results) {
    // WriteResult cannot fail on an ostringstream.
    IgnoreError(core::WriteResult(r, out));
  }
  if (!payload.setting_seconds.empty()) {
    out << "setting_seconds";
    char buf[40];
    for (const double s : payload.setting_seconds) {
      std::snprintf(buf, sizeof(buf), "%.17g", s);
      out << ' ' << buf;
    }
    out << "\n";
  }
  return out.str();
}

Status DecodePayload(const std::string& text, const ResultCacheKey& key,
                     const std::string& path, CachedResult* payload) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "proclus-cached-result v1") {
    return Status::IoError("corrupt .pcr payload (bad header): " + path);
  }
  if (!std::getline(in, line) || line.rfind("key ", 0) != 0) {
    return Status::IoError("corrupt .pcr payload (missing key): " + path);
  }
  if (line.substr(4) != key.text) {
    // A hash collision or a file renamed across keys: never serve it.
    return Status::IoError("cached result key mismatch: " + path);
  }
  size_t count = 0;
  if (!std::getline(in, line) || line.rfind("results ", 0) != 0) {
    return Status::IoError("corrupt .pcr payload (missing count): " + path);
  }
  {
    std::istringstream counts(line.substr(8));
    if (!(counts >> count) || count == 0) {
      return Status::IoError("corrupt .pcr payload (bad count): " + path);
    }
  }
  payload->results.resize(count);
  for (size_t i = 0; i < count; ++i) {
    PROCLUS_RETURN_NOT_OK(core::ReadResult(in, &payload->results[i]));
  }
  payload->setting_seconds.clear();
  if (std::getline(in, line) && line.rfind("setting_seconds", 0) == 0) {
    std::istringstream seconds(line.substr(15));
    double s = 0.0;
    while (seconds >> s) payload->setting_seconds.push_back(s);
  }
  return Status::OK();
}

}  // namespace

std::string ResultCacheKey::Hex() const { return HexOf(hash); }

int64_t CachedResult::EstimateBytes() const {
  int64_t bytes = 64;
  for (const core::ProclusResult& r : results) {
    bytes += 128;  // struct + vector headers
    bytes += static_cast<int64_t>(r.medoids.size()) * 4;
    bytes += static_cast<int64_t>(r.assignment.size()) * 4;
    for (const std::vector<int>& dims : r.dimensions) {
      bytes += 24 + static_cast<int64_t>(dims.size()) * 4;
    }
  }
  bytes += static_cast<int64_t>(setting_seconds.size()) * 8;
  return bytes;
}

Status WritePcr(const ResultCacheKey& key, const CachedResult& payload,
                const std::string& path) {
  const std::string body = EncodePayload(key, payload);
  unsigned char header[kPcrHeaderBytes] = {};
  std::memcpy(header, kPcrMagic, sizeof(kPcrMagic));
  PutU32(header + 4, kPcrVersion);
  PutU64(header + 8, key.hash);
  PutU64(header + 16, static_cast<uint64_t>(body.size()));
  PutU32(header + 24, store::Crc32(body.data(), body.size()));
  // header[28..31] stay zero (reserved).

  // Sibling-then-rename, the .pds pattern: the final name is never a
  // half-written file.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  bool ok = std::fwrite(header, 1, kPcrHeaderBytes, f) == kPcrHeaderBytes;
  if (ok && !body.empty()) {
    ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           std::strerror(err));
  }
  return Status::OK();
}

Status ReadPcr(const std::string& path, const ResultCacheKey& key,
               CachedResult* payload) {
  PROCLUS_CHECK(payload != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  unsigned char header[kPcrHeaderBytes] = {};
  std::string body;
  Status st = Status::OK();
  if (std::fread(header, 1, kPcrHeaderBytes, f) != kPcrHeaderBytes) {
    st = Status::IoError("truncated .pcr file: " + path);
  } else if (std::memcmp(header, kPcrMagic, sizeof(kPcrMagic)) != 0) {
    st = Status::IoError("not a .pcr file (bad magic): " + path);
  } else if (GetU32(header + 4) != kPcrVersion) {
    st = Status::IoError("unsupported .pcr version " +
                         std::to_string(GetU32(header + 4)) + ": " + path);
  } else if (GetU64(header + 8) != key.hash) {
    st = Status::IoError("cached result hash mismatch: " + path);
  } else if (GetU32(header + 28) != 0) {
    st = Status::IoError("corrupt .pcr header (reserved bytes set): " + path);
  } else {
    const uint64_t payload_bytes = GetU64(header + 16);
    if (payload_bytes > (1ull << 32)) {
      st = Status::IoError("corrupt .pcr header (implausible size): " + path);
    } else {
      body.resize(payload_bytes);
      if (payload_bytes > 0 &&
          std::fread(body.data(), 1, body.size(), f) != body.size()) {
        st = Status::IoError("truncated .pcr payload: " + path);
      } else if (store::Crc32(body.data(), body.size()) !=
                 GetU32(header + 24)) {
        st = Status::IoError(".pcr payload checksum mismatch: " + path);
      }
    }
  }
  std::fclose(f);
  PROCLUS_RETURN_NOT_OK(st);
  return DecodePayload(body, key, path, payload);
}

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(std::move(options)) {}

ResultCacheKey ResultCache::MakeKey(uint64_t dataset_hash, JobKind kind,
                                    const core::ProclusParams& params,
                                    const core::ClusterOptions& options,
                                    const core::SweepSpec& sweep) {
  ResultCacheKey key;
  key.text = "proclus-job v1 dataset=" + HexOf(dataset_hash);
  key.text += kind == JobKind::kSweep ? " kind=sweep " : " kind=single ";
  core::AppendCanonicalParams(params, &key.text);
  key.text.push_back(' ');
  core::AppendCanonicalOptions(options, &key.text);
  if (kind == JobKind::kSweep) {
    key.text.push_back(' ');
    core::AppendCanonicalSweep(sweep, &key.text);
  }
  key.hash = core::CanonicalHash(key.text);
  return key;
}

std::string ResultCache::PathForHash(uint64_t hash) const {
  return options_.dir + "/" + HexOf(hash) + kPcrExtension;
}

ResultCache::Admission ResultCache::AdmitOrJoin(
    const ResultCacheKey& key, std::shared_ptr<const CachedResult>* hit,
    Waiter waiter) {
  PROCLUS_CHECK(key.valid());
  PROCLUS_CHECK(hit != nullptr);
  obs::TraceSpan span(options_.trace, "cache.lookup", "cache");
  span.AddArg(obs::TraceArg::Str("key", key.Hex()));
  MutexLock lock(&mutex_);
  auto it = entries_.find(key.text);
  if (it != entries_.end()) {
    it->second.last_use = ++use_clock_;
    counters_.hits++;
    *hit = it->second.payload;
    span.AddArg(obs::TraceArg::Str("outcome", "hit"));
    return Admission::kHit;
  }
  auto flight = flights_.find(key.text);
  if (flight != flights_.end()) {
    flight->second.waiters.push_back(std::move(waiter));
    counters_.dedup_joins++;
    span.AddArg(obs::TraceArg::Str("outcome", "join"));
    return Admission::kJoined;
  }
  if (!options_.dir.empty()) {
    std::shared_ptr<const CachedResult> loaded = LoadSpillLocked(key);
    if (loaded != nullptr) {
      counters_.hits++;
      counters_.disk_loads++;
      *hit = std::move(loaded);
      span.AddArg(obs::TraceArg::Str("outcome", "load"));
      return Admission::kHit;
    }
  }
  counters_.misses++;
  flights_.emplace(key.text, Flight());
  span.AddArg(obs::TraceArg::Str("outcome", "lead"));
  return Admission::kLead;
}

void ResultCache::FinishFlight(const ResultCacheKey& key, const Status& status,
                               std::shared_ptr<const CachedResult> payload) {
  PROCLUS_CHECK(key.valid());
  std::vector<Waiter> waiters;
  {
    MutexLock lock(&mutex_);
    auto flight = flights_.find(key.text);
    if (flight != flights_.end()) {
      waiters = std::move(flight->second.waiters);
      flights_.erase(flight);
    }
    if (status.ok() && payload != nullptr) {
      obs::TraceSpan span(options_.trace, "cache.insert", "cache");
      span.AddArg(obs::TraceArg::Str("key", key.Hex()));
      InsertLocked(key, payload);
    }
  }
  // Waiters take job mutexes; never invoke them with the cache lock held.
  for (Waiter& waiter : waiters) {
    if (waiter) waiter(status, payload);
  }
}

Status ResultCache::EvictByHex(const std::string& hex, bool* evicted) {
  if (evicted != nullptr) *evicted = false;
  if (hex.size() != 16 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::InvalidArgument("malformed cache key (want 16 hex digits): " +
                                   hex);
  }
  uint64_t hash = 0;
  for (const char c : hex) {
    hash = hash << 4 |
           static_cast<uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  MutexLock lock(&mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (core::CanonicalHash(it->first) != hash) continue;
    resident_bytes_ -= it->second.bytes;
    counters_.evictions++;
    entries_.erase(it);
    if (evicted != nullptr) *evicted = true;
    break;
  }
  if (!options_.dir.empty()) {
    if (std::remove(PathForHash(hash).c_str()) == 0 && evicted != nullptr) {
      *evicted = true;
    }
  }
  return Status::OK();
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(&mutex_);
  ResultCacheStats snapshot = counters_;
  snapshot.entries = static_cast<int64_t>(entries_.size());
  snapshot.bytes = resident_bytes_;
  return snapshot;
}

void ResultCache::PublishMetrics(obs::MetricsRegistry* registry) const {
  PROCLUS_CHECK(registry != nullptr);
  const ResultCacheStats s = stats();
  // Literal full names: the prolint metric-taxonomy rule requires each to
  // appear in the docs/observability.md full-name table.
  registry->gauge("service.cache.entries")
      ->Set(static_cast<double>(s.entries));
  registry->gauge("service.cache.bytes")->Set(static_cast<double>(s.bytes));
  const auto set_counter = [registry](obs::Counter* c, int64_t value) {
    c->Increment(value - c->value());
  };
  set_counter(registry->counter("service.cache.hits"), s.hits);
  set_counter(registry->counter("service.cache.misses"), s.misses);
  set_counter(registry->counter("service.cache.inserts"), s.inserts);
  set_counter(registry->counter("service.cache.evictions"), s.evictions);
  set_counter(registry->counter("service.cache.dedup_joins"), s.dedup_joins);
  set_counter(registry->counter("service.cache.spills"), s.spills);
  set_counter(registry->counter("service.cache.disk_loads"), s.disk_loads);
}

void ResultCache::InsertLocked(const ResultCacheKey& key,
                               std::shared_ptr<const CachedResult> payload) {
  Entry& entry = entries_[key.text];
  if (entry.payload != nullptr) {
    // Replacing an identical-key entry (e.g. re-insert after EvictByHex
    // raced an in-flight run): drop the old accounting first.
    resident_bytes_ -= entry.bytes;
  }
  entry.payload = std::move(payload);
  entry.bytes = entry.payload->EstimateBytes();
  entry.on_disk = false;
  entry.last_use = ++use_clock_;
  resident_bytes_ += entry.bytes;
  counters_.inserts++;
  EnforceBudgetLocked();
}

void ResultCache::EnforceBudgetLocked() {
  if (options_.budget_bytes <= 0) return;
  while (resident_bytes_ > options_.budget_bytes && !entries_.empty()) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (!options_.dir.empty()) {
      SpillLocked(victim->first, &victim->second);
    }
    resident_bytes_ -= victim->second.bytes;
    counters_.evictions++;
    entries_.erase(victim);
  }
}

void ResultCache::SpillLocked(const std::string& text, Entry* entry) {
  if (entry->on_disk) return;
  ResultCacheKey key;
  key.text = text;
  key.hash = core::CanonicalHash(text);
  obs::TraceSpan span(options_.trace, "cache.spill", "cache");
  span.AddArg(obs::TraceArg::Str("key", key.Hex()));
  const Status st = WritePcr(key, *entry->payload, PathForHash(key.hash));
  if (st.ok()) {
    entry->on_disk = true;
    counters_.spills++;
  }
  span.AddArg(obs::TraceArg::Str("outcome", st.ok() ? "ok" : "error"));
}

std::shared_ptr<const CachedResult> ResultCache::LoadSpillLocked(
    const ResultCacheKey& key) {
  const std::string path = PathForHash(key.hash);
  {
    std::FILE* probe = std::fopen(path.c_str(), "rb");
    if (probe == nullptr) return nullptr;  // plain miss, no span
    std::fclose(probe);
  }
  obs::TraceSpan span(options_.trace, "cache.load", "cache");
  span.AddArg(obs::TraceArg::Str("key", key.Hex()));
  auto loaded = std::make_shared<CachedResult>();
  const Status st = ReadPcr(path, key, loaded.get());
  if (!st.ok()) {
    // Corruption is a miss; remove the file so the next insert heals it.
    std::remove(path.c_str());
    span.AddArg(obs::TraceArg::Str("outcome", "corrupt"));
    return nullptr;
  }
  std::shared_ptr<const CachedResult> payload = std::move(loaded);
  Entry& entry = entries_[key.text];
  entry.payload = payload;
  entry.bytes = payload->EstimateBytes();
  entry.on_disk = true;
  entry.last_use = ++use_clock_;
  resident_bytes_ += entry.bytes;
  EnforceBudgetLocked();
  span.AddArg(obs::TraceArg::Str("outcome", "ok"));
  return payload;
}

}  // namespace proclus::service
