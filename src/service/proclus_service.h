#ifndef PROCLUS_SERVICE_PROCLUS_SERVICE_H_
#define PROCLUS_SERVICE_PROCLUS_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "data/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "service/device_pool.h"
#include "service/job.h"
#include "service/result_cache.h"
#include "simt/device_properties.h"
#include "store/dataset_store.h"

namespace proclus::service {

// Configuration of a ProclusService.
struct ServiceOptions {
  // Job runner threads: how many jobs execute concurrently.
  int num_workers = 2;
  // Bound on jobs waiting in the queue (running jobs excluded). Submit
  // returns ResourceExhausted when the queue is full.
  int queue_capacity = 256;
  // Persistent simulated devices for GPU jobs; jobs serialize per device.
  int gpu_devices = 1;
  simt::DeviceProperties device_properties =
      simt::DeviceProperties::Gtx1660Ti();
  // Worker count of the shared compute pool used by kMultiCore jobs that
  // leave num_threads == 0 (0 = hardware concurrency).
  int compute_threads = 0;
  // Default deadline for jobs that leave timeout_seconds == 0
  // (0 = no deadline).
  double default_timeout_seconds = 0.0;
  // Construct the GPU devices up front so the first job already runs warm.
  bool prewarm_devices = true;
  // Checked execution (simtcheck) for every pooled device: GPU jobs run
  // under the shadow-memory race/memory checker, any finding fails the job
  // with an internal-error status, and per-job reports land in
  // JobResult::sanitizer_reports. Defaults to PROCLUS_SIMTCHECK=1; the
  // CLI's --simtcheck sets it explicitly. See docs/simt.md.
  bool sanitize_devices = simt::SimtcheckEnvDefault();
  // Structured tracing for the whole service: jobs with JobSpec::trace set
  // record their lifecycle (queue-wait and run spans, category "service")
  // plus the run's driver/backend/device events into this recorder. Must
  // outlive the service. Null disables tracing.
  obs::TraceRecorder* trace = nullptr;
  // Optional fault hook installed on the device pool: consulted once per
  // device acquisition; a non-OK return fails the acquiring job with that
  // status. Wired from FaultInjector::DeviceFaultHook() by
  // `proclus_cli serve --fault-plan` (net/fault.h). Must be thread-safe
  // and outlive the service.
  std::function<Status()> device_fault_hook;
  // Directory for the dataset store's content-addressed `.pds` spill files
  // (`proclus_cli serve --store-dir`). Empty keeps the store memory-only:
  // datasets never spill and are never evicted, matching the pre-store
  // behavior. See docs/store.md.
  std::string store_dir;
  // Resident-bytes budget for stored datasets (0 = unbounded). Only
  // meaningful with a store_dir; LRU entries spill there under pressure.
  int64_t store_budget_bytes = 0;
  // Result cache (service/result_cache.h, docs/serving.md): in-memory byte
  // budget for cached clustering results. 0 disables caching entirely —
  // every job executes. > 0 turns on content-addressed lookup before
  // enqueue, insert-on-success, and single-flight dedup of identical
  // concurrent submits (`proclus_cli serve --result-cache-mb`).
  int64_t result_cache_bytes = 0;
  // Optional spill directory for evicted results (`.pcr` files,
  // `--result-cache-dir`); typically the dataset store's directory. Empty:
  // evicted results are dropped (they are recomputable).
  std::string result_cache_dir;
};

// Aggregate service counters. Snapshot via ProclusService::stats().
struct ServiceStats {
  int64_t submitted = 0;
  int64_t rejected = 0;  // queue full at Submit
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t timed_out = 0;
  // Highest number of jobs ever waiting in the queue at once.
  int64_t queue_depth_high_water = 0;
  // Device-pool traffic: total leases, and leases that found a warm arena.
  int64_t device_acquires = 0;
  int64_t device_reuse_hits = 0;
  // Summed execution seconds (wall) and modeled GPU seconds across jobs.
  double exec_seconds_total = 0.0;
  double modeled_gpu_seconds_total = 0.0;
  // Total simtcheck findings across jobs (0 unless sanitize_devices).
  int64_t sanitizer_findings_total = 0;
  // Summed JobResult::sweep_shards across sweep jobs: device lanes the
  // sweep scheduler actually used (a serial sweep contributes 1).
  int64_t sweep_shards_total = 0;
  // Bytes of dataset payload currently resident in the dataset store.
  int64_t datasets_resident_bytes = 0;
};

// Long-lived clustering front end: owns one shared compute ThreadPool, a
// pool of persistent simulated devices with warm arenas, and an optional
// cache of datasets keyed by id; exposes an asynchronous, bounded,
// priority-FIFO job queue over core::Cluster / core::RunMultiParam.
//
// Determinism under concurrency: a job's clustering is a pure function of
// (dataset, params, options) — every random draw comes from params.seed,
// multi-core chunk partials are combined in chunk order, each GPU job has a
// device to itself, and warm arenas are zeroed per allocation — so a job's
// results are bit-identical to a blocking core::Cluster()/RunMultiParam()
// call with the same inputs, regardless of what else runs concurrently.
// The service stress test asserts exactly this.
class ProclusService {
 public:
  explicit ProclusService(ServiceOptions options = {});
  // Drains the queue (every accepted job reaches a terminal phase) and
  // joins the workers. Cancel jobs first if you need a fast exit.
  ~ProclusService();

  ProclusService(const ProclusService&) = delete;
  ProclusService& operator=(const ProclusService&) = delete;

  // Stores a dataset under `id` for JobSpecs to reference; replaces any
  // previous dataset with the same id. Jobs already submitted keep the
  // version they resolved at Submit time. Datasets live in the content-
  // addressed dataset store (store/dataset_store.h): with a store_dir
  // configured they spill to disk under memory pressure and reload on
  // demand; jobs pin their dataset so it can never be evicted mid-run.
  Status RegisterDataset(const std::string& id, data::Matrix points);
  bool HasDataset(const std::string& id) const;

  // The backing dataset store — the serving layer's upload/list/evict ops
  // operate on it directly.
  store::DatasetStore* dataset_store() { return store_.get(); }
  const store::DatasetStore* dataset_store() const { return store_.get(); }

  // The result cache, or null when ServiceOptions::result_cache_bytes is 0.
  // The serving layer's evict_result op calls EvictByHex on it directly.
  ResultCache* result_cache() { return cache_.get(); }
  const ResultCache* result_cache() const { return cache_.get(); }

  // Result-cache counters (all zero when the cache is disabled).
  ResultCacheStats result_cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : ResultCacheStats();
  }

  // Validates `spec`, resolves its dataset, and enqueues it. On OK fills
  // `*handle`. Returns ResourceExhausted when the queue is full and
  // FailedPrecondition after Shutdown. Never blocks on queue space.
  //
  // With a result cache configured, the lookup happens here, before the
  // queue: a cached result finishes the job synchronously
  // (JobResult::cache_hit), and a submit identical to a job already queued
  // or running joins that job's flight instead of enqueuing — it consumes
  // no queue slot (so dedup keeps working under queue-full backpressure)
  // and finishes when the leader does, sharing its result or its terminal
  // status. Checked runs (options.gpu_sanitize, or any GPU job on a
  // sanitizing service) bypass the cache entirely.
  Status Submit(JobSpec spec, JobHandle* handle) EXCLUDES(queue_mutex_);

  // Stops accepting jobs, runs everything still queued, joins the workers.
  // Idempotent; called by the destructor.
  void Shutdown() EXCLUDES(queue_mutex_);

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  // Instantaneous load figures for health reporting (net/protocol.h's
  // WireHealth): jobs currently waiting in the two queues, and device-pool
  // saturation.
  int64_t queue_depth() const EXCLUDES(queue_mutex_);
  int devices_leased() const;
  int device_capacity() const;

  // Publishes a stats() snapshot into `registry` as gauges named
  // "<prefix>.submitted", "<prefix>.completed", ... (docs/observability.md).
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix = "service") const;

 private:
  void WorkerLoop() EXCLUDES(queue_mutex_);
  std::shared_ptr<internal::Job> PopJobLocked() REQUIRES(queue_mutex_);
  void RunJob(const std::shared_ptr<internal::Job>& job)
      EXCLUDES(queue_mutex_);

  const ServiceOptions options_;
  std::shared_ptr<internal::SharedStats> stats_;
  std::unique_ptr<parallel::ThreadPool> compute_pool_;
  std::unique_ptr<DevicePool> device_pool_;

  std::unique_ptr<store::DatasetStore> store_;
  // Null when result_cache_bytes is 0 (caching off).
  std::unique_ptr<ResultCache> cache_;

  mutable Mutex queue_mutex_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<internal::Job>> interactive_queue_
      GUARDED_BY(queue_mutex_);
  std::deque<std::shared_ptr<internal::Job>> bulk_queue_
      GUARDED_BY(queue_mutex_);
  bool stopping_ GUARDED_BY(queue_mutex_) = false;
  uint64_t next_job_id_ GUARDED_BY(queue_mutex_) = 1;

  std::vector<std::thread> workers_;
};

}  // namespace proclus::service

#endif  // PROCLUS_SERVICE_PROCLUS_SERVICE_H_
