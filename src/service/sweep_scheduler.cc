#include "service/sweep_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "core/gpu_backend.h"
#include "core/sweep_plan.h"
#include "obs/trace.h"
#include "parallel/cancellation.h"

namespace proclus::service {

namespace {

// How often the watcher mirrors the caller's cancel/deadline into the
// sweep-local token the lanes watch.
constexpr auto kCancelPollInterval = std::chrono::milliseconds(2);

struct Lane {
  DevicePool::Lease lease;
  std::unique_ptr<core::Backend> backend;
};

}  // namespace

Status SweepScheduler::Run(const data::Matrix& data,
                           const core::ProclusParams& base,
                           const core::SweepSpec& sweep,
                           const core::ClusterOptions& cluster,
                           Outcome* outcome) {
  PROCLUS_CHECK(outcome != nullptr);
  *outcome = Outcome{};
  if (cluster.backend != core::ComputeBackend::kGpu) {
    return Status::InvalidArgument(
        "SweepScheduler shards GPU sweeps; run CPU sweeps through "
        "core::RunMultiParam");
  }
  if (cluster.device != nullptr) {
    return Status::InvalidArgument(
        "SweepScheduler leases pooled devices; leave cluster.device null");
  }
  PROCLUS_RETURN_NOT_OK(cluster.Validate());
  PROCLUS_RETURN_NOT_OK(sweep.Validate(base, data.rows(), data.cols()));

  const core::SweepPlan plan = core::SweepPlan::Build(sweep);

  // Opportunistic width: every idle device up to the shard count and the
  // caller's budget, but never block waiting for more than one.
  int desired = static_cast<int>(plan.shards.size());
  if (sweep.max_shards > 0) desired = std::min(desired, sweep.max_shards);
  desired = std::min(desired, pool_->capacity());
  std::vector<DevicePool::Lease> leases;
  PROCLUS_RETURN_NOT_OK(
      pool_->AcquireMany(1, desired, cluster.cancel, &leases));

  // Like the serial runner, total_seconds excludes the wait for devices
  // (RunJob accounts queueing separately).
  StopWatch total_watch;
  const int lanes = static_cast<int>(leases.size());
  std::vector<Lane> lane_state(lanes);
  for (int i = 0; i < lanes; ++i) {
    lane_state[i].lease = leases[i];
    simt::Device* device = leases[i].device;
    device->ResetArena();
    device->ResetStats();
    device->set_trace(cluster.trace);
    core::GpuBackendOptions gpu_options;
    gpu_options.assign_block_dim = cluster.gpu_assign_block_dim;
    gpu_options.use_streams = cluster.gpu_streams;
    gpu_options.device_dim_selection = cluster.gpu_device_dim_selection;
    lane_state[i].backend = std::make_unique<core::GpuBackend>(
        data, cluster.strategy, device, gpu_options);
    lane_state[i].backend->SetTrace(cluster.trace);
  }

  // The post-acquire body; leases are released on every path after it.
  const Status status = [&]() -> Status {
    outcome->result.results.assign(sweep.settings.size(),
                                   core::ProclusResult{});
    outcome->result.setting_seconds.assign(sweep.settings.size(), 0.0);

    core::SweepSharedContext shared;
    PROCLUS_RETURN_NOT_OK(core::PrepareSweepShared(
        data, base, sweep, lane_state[0].backend.get(), cluster.cancel,
        &shared));

    // Lanes watch a sweep-local token so a failing shard can abort its
    // siblings; the watcher mirrors the caller's token into it, which
    // keeps external cancel/deadline propagation intact.
    parallel::CancellationToken sweep_token;
    std::atomic<bool> lanes_done{false};
    std::thread watcher;
    if (cluster.cancel != nullptr) {
      watcher = std::thread([&] {
        while (!lanes_done.load(std::memory_order_acquire)) {
          if (!cluster.cancel->Check().ok()) {
            sweep_token.Cancel();
            return;
          }
          std::this_thread::sleep_for(kCancelPollInterval);
        }
      });
    }

    std::vector<Status> shard_status(plan.shards.size());
    const auto run_lane = [&](int lane) {
      core::ClusterOptions lane_cluster = cluster;
      lane_cluster.cancel = &sweep_token;
      // kNone shards run through Cluster() and need the lane's device;
      // shared-engine shards run on the lane backend directly.
      if (sweep.reuse == core::ReuseLevel::kNone) {
        lane_cluster.device = lane_state[lane].lease.device;
      }
      for (size_t s = lane; s < plan.shards.size();
           s += static_cast<size_t>(lanes)) {
        obs::TraceSpan span(cluster.trace, "sweep.shard", "service");
        span.AddArg(obs::TraceArg::Int("shard", static_cast<int64_t>(s)));
        span.AddArg(obs::TraceArg::Int("lane", lane));
        span.AddArg(obs::TraceArg::Int(
            "settings",
            static_cast<int64_t>(plan.shards[s].setting_indices.size())));
        const Status shard_result = core::RunSweepShard(
            data, base, sweep, plan.shards[s],
            sweep.reuse == core::ReuseLevel::kNone ? nullptr : &shared,
            lane_cluster,
            sweep.reuse == core::ReuseLevel::kNone
                ? nullptr
                : lane_state[lane].backend.get(),
            &outcome->result);
        span.AddArg(
            obs::TraceArg::Str("outcome", shard_result.ok() ? "ok" : "error"));
        span.End();
        shard_status[s] = shard_result;
        if (!shard_result.ok()) {
          // Abort sibling lanes: the sweep's outcome is already decided.
          sweep_token.Cancel();
          return;
        }
      }
    };

    if (lanes == 1) {
      run_lane(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(lanes);
      for (int lane = 0; lane < lanes; ++lane) {
        threads.emplace_back(run_lane, lane);
      }
      for (std::thread& t : threads) t.join();
    }
    lanes_done.store(true, std::memory_order_release);
    if (watcher.joinable()) watcher.join();

    // The caller's token wins the status (it distinguishes Cancelled from
    // DeadlineExceeded); otherwise the first failing shard in plan order —
    // deterministic — beats the Cancelled statuses it induced in siblings.
    if (cluster.cancel != nullptr) {
      PROCLUS_RETURN_NOT_OK(cluster.cancel->Check());
    }
    for (const Status& s : shard_status) {
      if (!s.ok() && s.code() != StatusCode::kCancelled) return s;
    }
    for (const Status& s : shard_status) {
      PROCLUS_RETURN_NOT_OK(s);
    }
    outcome->result.total_seconds = total_watch.ElapsedSeconds();
    return Status::OK();
  }();

  Status final_status = status;
  outcome->shards_used = lanes;
  outcome->warm_device = true;
  for (Lane& lane : lane_state) {
    simt::Device* device = lane.lease.device;
    outcome->modeled_gpu_seconds += device->modeled_seconds();
    outcome->lane_modeled_seconds.push_back(device->modeled_seconds());
    outcome->warm_device = outcome->warm_device && lane.lease.warm;
    if (device->sanitize_enabled()) {
      const simt::Sanitizer* sanitizer = device->sanitizer();
      // ResetStats above cleared the run state, so these figures belong to
      // this sweep alone.
      outcome->sanitizer_findings += sanitizer->findings();
      outcome->sanitizer_checked_accesses += sanitizer->checked_accesses();
      if (sanitizer->findings() > 0) {
        for (std::string& report : sanitizer->Reports(
                 simt::Sanitizer::kMaxDetailedViolations)) {
          outcome->sanitizer_reports.push_back(std::move(report));
        }
        if (final_status.ok()) {
          final_status = Status::Internal(sanitizer->Summary());
        }
      }
    }
    device->set_trace(nullptr);
    pool_->Release(device);
  }
  if (!final_status.ok()) outcome->result = core::MultiParamResult{};
  return final_status;
}

}  // namespace proclus::service
