#ifndef PROCLUS_SERVICE_DEVICE_POOL_H_
#define PROCLUS_SERVICE_DEVICE_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "parallel/cancellation.h"
#include "simt/device.h"
#include "simt/device_properties.h"

namespace proclus::service {

// Fixed-capacity pool of persistent simt::Device instances. Constructing a
// Device is the per-call overhead the paper's allocate-once strategy (§5.2)
// eliminates — it spawns the host worker pool and the arena grows from
// cold — so the service keeps devices alive across jobs and hands them out
// one job at a time. Between jobs the arena is reset but its chunk capacity
// is retained (simt::Device::ResetArena), which is what makes a reused
// device "warm".
//
// Thread-safe. Acquire blocks while every device is leased; jobs on one
// device are therefore serialized, which preserves the determinism
// contract (a device never runs two jobs at once).
class DevicePool {
 public:
  // `capacity` devices modeling `props`. With `prewarm` the devices are
  // constructed here (paying thread startup before the first job arrives);
  // otherwise lazily on first acquire. `device_options` applies to every
  // pooled device; its default already honors PROCLUS_SIMTCHECK=1.
  DevicePool(int capacity, simt::DeviceProperties props, bool prewarm,
             simt::DeviceOptions device_options = {});

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  struct Lease {
    simt::Device* device = nullptr;
    // The device has run at least one job before (warm arena).
    bool warm = false;
  };

  // Blocks until a device is idle and leases it into `*lease`. The wait is
  // interruptible: it aborts with Cancelled/DeadlineExceeded as soon as
  // `cancel` (optional) fires, and with FailedPrecondition once the pool is
  // shut down — a caller waiting on a fully-leased pool can therefore
  // always be unwedged. On OK the caller must Release the leased device.
  Status AcquireFor(const parallel::CancellationToken* cancel, Lease* lease)
      EXCLUDES(mutex_);

  // Multi-device acquisition for sweep sharding: blocks until at least
  // `min_count` devices are idle, then leases them — plus any further idle
  // devices up to `max_count` — in one atomic step under the pool lock.
  // All-or-nothing: a caller never sits on a partial set of devices while
  // waiting for more, so two concurrent multi-acquirers cannot deadlock
  // each other (the failure mode of acquiring devices one AcquireFor at a
  // time). The wait is interruptible exactly like AcquireFor. On OK
  // `leases->size()` is in [min_count, max_count] and every leased device
  // must be Released. Requires 1 <= min_count <= max_count and
  // min_count <= capacity() (otherwise InvalidArgument; the wait could
  // never be satisfied).
  Status AcquireMany(int min_count, int max_count,
                     const parallel::CancellationToken* cancel,
                     std::vector<Lease>* leases) EXCLUDES(mutex_);

  // Blocks until a device is idle and leases it. Aborts the process if the
  // pool is shut down while waiting; prefer AcquireFor when the wait must
  // be interruptible.
  Lease Acquire() EXCLUDES(mutex_);
  void Release(simt::Device* device) EXCLUDES(mutex_);

  // Wakes every waiter (their AcquireFor returns FailedPrecondition) and
  // makes future acquires fail. Leased devices stay valid until Release.
  // Idempotent.
  void Shutdown() EXCLUDES(mutex_);

  // Installs a fault hook consulted once per AcquireFor/AcquireMany call,
  // before any wait: a non-OK return fails the acquisition with that
  // status. Used for injected device failures (net/fault.h); pass nullptr
  // to clear. The hook runs outside the pool lock and must be thread-safe.
  void SetFaultHook(std::function<Status()> hook) EXCLUDES(mutex_);

  int capacity() const { return capacity_; }
  // Devices currently leased out (pool saturation for health reporting).
  int leased() const EXCLUDES(mutex_);
  // Total leases handed out, and how many of them found a warm device.
  int64_t acquires() const EXCLUDES(mutex_);
  int64_t reuse_hits() const EXCLUDES(mutex_);

 private:
  struct Entry {
    std::unique_ptr<simt::Device> device;
    bool leased = false;
    bool used_before = false;
  };

  Entry* FindIdleLocked() REQUIRES(mutex_);
  Lease LeaseEntryLocked(Entry* entry) REQUIRES(mutex_);

  const int capacity_;
  const simt::DeviceProperties props_;
  const simt::DeviceOptions device_options_;

  mutable Mutex mutex_;
  std::condition_variable device_idle_;
  std::vector<Entry> entries_ GUARDED_BY(mutex_);
  std::function<Status()> fault_hook_ GUARDED_BY(mutex_);
  bool shutdown_ GUARDED_BY(mutex_) = false;
  int64_t acquires_ GUARDED_BY(mutex_) = 0;
  int64_t reuse_hits_ GUARDED_BY(mutex_) = 0;
};

}  // namespace proclus::service

#endif  // PROCLUS_SERVICE_DEVICE_POOL_H_
