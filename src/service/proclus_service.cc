#include "service/proclus_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "core/multi_param.h"
#include "parallel/cancellation.h"
#include "service/result_cache.h"
#include "service/sweep_scheduler.h"

namespace proclus::service {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool IsTerminal(JobPhase phase) {
  return phase != JobPhase::kQueued && phase != JobPhase::kRunning;
}

JobPhase PhaseForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return JobPhase::kDone;
    case StatusCode::kCancelled:
      return JobPhase::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return JobPhase::kTimedOut;
    default:
      return JobPhase::kFailed;
  }
}

}  // namespace

const char* JobPhaseName(JobPhase phase) {
  switch (phase) {
    case JobPhase::kQueued:
      return "queued";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kDone:
      return "done";
    case JobPhase::kCancelled:
      return "cancelled";
    case JobPhase::kTimedOut:
      return "timed-out";
    case JobPhase::kFailed:
      return "failed";
  }
  return "?";
}

JobSpec JobSpec::Single(const data::Matrix& data,
                        const core::ProclusParams& params,
                        const core::ClusterOptions& options) {
  JobSpec spec;
  spec.kind = JobKind::kSingle;
  spec.data = &data;
  spec.params = params;
  spec.options = options;
  return spec;
}

JobSpec JobSpec::Sweep(const data::Matrix& data,
                       const core::ProclusParams& base, core::SweepSpec sweep,
                       const core::ClusterOptions& options) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.data = &data;
  spec.params = base;
  spec.sweep = std::move(sweep);
  spec.options = options;
  return spec;
}

namespace internal {

// Counters shared by the service and every job it created, so a JobHandle
// outliving the service (or cancelling concurrently with shutdown) can
// still record its terminal transition safely.
//
// Lock nesting: the stats mutex is a leaf — it is taken while holding a
// job's mutex (terminal transitions) and while holding queue_mutex_
// (Submit's accounting), and never takes another lock itself
// (docs/concurrency.md).
struct SharedStats {
  Mutex mutex;
  int64_t submitted GUARDED_BY(mutex) = 0;
  int64_t rejected GUARDED_BY(mutex) = 0;
  int64_t completed GUARDED_BY(mutex) = 0;
  int64_t failed GUARDED_BY(mutex) = 0;
  int64_t cancelled GUARDED_BY(mutex) = 0;
  int64_t timed_out GUARDED_BY(mutex) = 0;
  int64_t queue_depth_high_water GUARDED_BY(mutex) = 0;
  double exec_seconds_total GUARDED_BY(mutex) = 0.0;
  double modeled_gpu_seconds_total GUARDED_BY(mutex) = 0.0;
  int64_t sanitizer_findings_total GUARDED_BY(mutex) = 0;
  int64_t sweep_shards_total GUARDED_BY(mutex) = 0;
  std::atomic<int64_t> next_start_sequence{0};

  void CountTerminal(const Status& status) EXCLUDES(mutex) {
    MutexLock lock(&mutex);
    switch (status.code()) {
      case StatusCode::kOk:
        ++completed;
        break;
      case StatusCode::kCancelled:
        ++cancelled;
        break;
      case StatusCode::kDeadlineExceeded:
        ++timed_out;
        break;
      default:
        ++failed;
        break;
    }
  }
};

struct Job {
  uint64_t id = 0;
  JobSpec spec;
  // Resolved dataset. When the spec referenced a dataset_id, `pin` holds a
  // store pin for the job's lifetime — the payload stays resident and the
  // entry cannot be evicted (or its memory reclaimed) until the job is
  // done, even if the id is re-registered or the store is under budget
  // pressure meanwhile.
  const data::Matrix* data = nullptr;
  store::PinnedDataset pin;
  parallel::CancellationToken token;
  std::chrono::steady_clock::time_point submit_time;
  std::shared_ptr<SharedStats> stats;
  // Service recorder when tracing is on for this job; null otherwise. The
  // submit timestamp (recorder micros) anchors the queue-wait span.
  obs::TraceRecorder* trace = nullptr;
  double submit_ts_us = 0.0;

  // Emits the span covering time spent waiting in the queue, ending now.
  // `outcome` is "run" when a worker picked the job up, else the reason it
  // never ran. Takes the TraceRecorder's lock internally, so it must never
  // run under `mutex` — obs locks are leaves below every service lock
  // (docs/concurrency.md); EXCLUDES makes the analysis reject a regression.
  void TraceQueueWait(const char* outcome) EXCLUDES(mutex) {
    if (trace == nullptr || !trace->enabled()) return;
    trace->AddComplete("job.queue_wait", "service", submit_ts_us,
                       trace->NowMicros() - submit_ts_us,
                       {obs::TraceArg::Int("job", static_cast<int64_t>(id)),
                        obs::TraceArg::Str("outcome", outcome)});
  }

  // Single-flight leadership (service/result_cache.h): set at Submit —
  // before the job is shared with any other thread — when this job leads
  // the result-cache flight for its key; immutable afterwards. The one
  // thread that performs the terminal transition settles the flight: the
  // failure paths call SettleFlightFailed after their FinishLocked, while
  // RunJob's normal path calls FinishFlight itself, before publishing, so
  // an identical resubmit after Wait() is guaranteed to hit the cache.
  ResultCache* flight_cache = nullptr;
  ResultCacheKey flight_key;

  // Settles a led flight with the published (terminal, hence immutable)
  // status — nothing is cached, parked joiners inherit the status. Must be
  // called without `mutex` held: joiner callbacks take their own jobs'
  // mutexes, and the cache lock never nests under a job lock
  // (docs/concurrency.md). No-op for non-leaders.
  void SettleFlightFailed() EXCLUDES(mutex) {
    if (flight_cache == nullptr) return;
    flight_cache->FinishFlight(flight_key, result.status, nullptr);
  }

  Mutex mutex;
  std::condition_variable cv;
  JobPhase phase GUARDED_BY(mutex) = JobPhase::kQueued;
  // Written under `mutex`; the terminal transition (FinishLocked) publishes
  // it through `phase` + `cv`, after which it is immutable and readers
  // (Wait's return, FlushCallbacks, the synchronous OnComplete path) may
  // touch it without the lock. The capability analysis cannot express
  // publish-once, so `result` is deliberately not GUARDED_BY.
  JobResult result;
  // Completion callbacks registered via JobHandle::OnComplete that have not
  // fired yet; invoked (outside the lock) by FlushCallbacks exactly once
  // after the terminal transition.
  std::vector<std::function<void(const JobResult&)>> completion_callbacks
      GUARDED_BY(mutex);

  void FinishLocked(Status status) REQUIRES(mutex) {
    // Drop the store pin before the terminal transition publishes: once
    // Wait() returns, the dataset must already be evictable again. (This
    // nests the store's lock under the job's — the sanctioned direction,
    // see docs/concurrency.md.)
    data = nullptr;
    pin.Release();
    result.status = std::move(status);
    phase = PhaseForStatus(result.status);
    cv.notify_all();
  }

  // Invokes and clears the pending completion callbacks. Must be called
  // WITHOUT `mutex` held, after the transition to a terminal phase; every
  // FinishLocked call site pairs with one FlushCallbacks once its lock is
  // released. Safe to call more than once (later calls see no callbacks).
  void FlushCallbacks() EXCLUDES(mutex) {
    std::vector<std::function<void(const JobResult&)>> callbacks;
    {
      MutexLock lock(&mutex);
      callbacks.swap(completion_callbacks);
    }
    for (auto& callback : callbacks) callback(result);
  }
};

}  // namespace internal

// --- JobHandle ---------------------------------------------------------------

uint64_t JobHandle::id() const { return job_ != nullptr ? job_->id : 0; }

JobPhase JobHandle::phase() const {
  PROCLUS_CHECK(job_ != nullptr);
  MutexLock lock(&job_->mutex);
  return job_->phase;
}

const JobResult& JobHandle::Wait() const {
  PROCLUS_CHECK(job_ != nullptr);
  MutexLock lock(&job_->mutex);
  while (!IsTerminal(job_->phase)) job_->cv.wait(lock.native());
  return job_->result;
}

const JobResult* JobHandle::TryGet() const {
  if (job_ == nullptr) return nullptr;
  MutexLock lock(&job_->mutex);
  return IsTerminal(job_->phase) ? &job_->result : nullptr;
}

void JobHandle::OnComplete(
    std::function<void(const JobResult&)> callback) const {
  PROCLUS_CHECK(job_ != nullptr && callback != nullptr);
  {
    MutexLock lock(&job_->mutex);
    if (!IsTerminal(job_->phase)) {
      job_->completion_callbacks.push_back(std::move(callback));
      return;
    }
  }
  // Already terminal: the result is immutable now, invoke synchronously
  // (outside the lock — user callbacks never run under a service lock).
  callback(job_->result);
}

void JobHandle::Cancel() {
  if (job_ == nullptr) return;
  job_->token.Cancel();
  bool finished_here = false;
  {
    MutexLock lock(&job_->mutex);
    if (job_->phase == JobPhase::kQueued) {
      // Still waiting for a worker: finish right here; the worker skips
      // the job when it eventually pops it. Count before FinishLocked so
      // stats() is consistent once Wait() returns.
      job_->result.queue_seconds = SecondsSince(job_->submit_time);
      job_->stats->CountTerminal(Status::Cancelled("cancelled while queued"));
      job_->FinishLocked(Status::Cancelled("cancelled while queued"));
      finished_here = true;
    }
    // Running jobs stop cooperatively via the token; the worker finishes
    // them with the Cancelled status the driver returns.
  }
  if (finished_here) {
    // Tracing and callbacks run outside the job lock: TraceQueueWait takes
    // the TraceRecorder's lock, and obs locks must never nest under a
    // service lock (docs/concurrency.md).
    job_->TraceQueueWait("cancelled");
    job_->FlushCallbacks();
    // A cancelled leader takes its joiners with it (shared fate): they are
    // notified once, with the Cancelled status.
    job_->SettleFlightFailed();
  }
}

// --- ProclusService ----------------------------------------------------------

ProclusService::ProclusService(ServiceOptions options)
    : options_(std::move(options)),
      stats_(std::make_shared<internal::SharedStats>()),
      compute_pool_(
          std::make_unique<parallel::ThreadPool>(options_.compute_threads)),
      device_pool_(std::make_unique<DevicePool>(
          std::max(1, options_.gpu_devices), options_.device_properties,
          options_.prewarm_devices,
          simt::DeviceOptions{0, options_.sanitize_devices})),
      store_(std::make_unique<store::DatasetStore>(store::StoreOptions{
          options_.store_dir, options_.store_budget_bytes,
          /*mmap_loads=*/true, options_.trace})),
      cache_(options_.result_cache_bytes > 0
                 ? std::make_unique<ResultCache>(ResultCacheOptions{
                       options_.result_cache_bytes,
                       options_.result_cache_dir, options_.trace})
                 : nullptr) {
  if (options_.device_fault_hook) {
    device_pool_->SetFaultHook(options_.device_fault_hook);
  }
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ProclusService::~ProclusService() { Shutdown(); }

Status ProclusService::RegisterDataset(const std::string& id,
                                       data::Matrix points) {
  if (points.empty()) {
    return Status::InvalidArgument("dataset must not be empty");
  }
  return store_->Put(id, std::move(points));
}

bool ProclusService::HasDataset(const std::string& id) const {
  return store_->Contains(id);
}

Status ProclusService::Submit(JobSpec spec, JobHandle* handle) {
  if (handle == nullptr) {
    return Status::InvalidArgument("handle must not be null");
  }
  *handle = JobHandle();
  if (spec.options.device != nullptr || spec.options.pool != nullptr ||
      spec.options.cancel != nullptr || spec.options.trace != nullptr) {
    return Status::InvalidArgument(
        "options.device/pool/cancel/trace are owned by the service; leave "
        "them null");
  }
  PROCLUS_RETURN_NOT_OK(spec.options.Validate());
  if (spec.options.gpu_sanitize && !options_.sanitize_devices) {
    // Fail here instead of when the pooled (unsanitized) device is attached.
    return Status::InvalidArgument(
        "options.gpu_sanitize requires a sanitizing service "
        "(ServiceOptions::sanitize_devices or PROCLUS_SIMTCHECK=1)");
  }
  if (spec.timeout_seconds < 0.0) {
    return Status::InvalidArgument("timeout_seconds must be >= 0");
  }

  // Resolve the dataset now so bad references fail synchronously. The pin
  // taken here rides in the Job and is released when the job object dies,
  // so the store cannot evict the payload while the job is queued/running.
  const data::Matrix* data = spec.data;
  store::PinnedDataset pin;
  uint64_t dataset_hash = 0;
  if (!spec.dataset_id.empty()) {
    if (data != nullptr) {
      return Status::InvalidArgument("data and dataset_id are exclusive");
    }
    PROCLUS_RETURN_NOT_OK(store_->Acquire(spec.dataset_id, &pin,
                                          &dataset_hash));
    data = pin.get();
  }
  if (data == nullptr) {
    return Status::InvalidArgument("either data or dataset_id is required");
  }

  if (spec.kind == JobKind::kSingle) {
    PROCLUS_RETURN_NOT_OK(spec.params.Validate(data->rows(), data->cols()));
  } else {
    PROCLUS_RETURN_NOT_OK(
        spec.sweep.Validate(spec.params, data->rows(), data->cols()));
  }

  auto job = std::make_shared<internal::Job>();
  job->spec = std::move(spec);
  job->data = data;
  job->pin = std::move(pin);
  job->stats = stats_;
  job->submit_time = std::chrono::steady_clock::now();
  if (options_.trace != nullptr && job->spec.trace) {
    job->trace = options_.trace;
    job->submit_ts_us = options_.trace->NowMicros();
  }
  const double timeout = job->spec.timeout_seconds > 0.0
                             ? job->spec.timeout_seconds
                             : options_.default_timeout_seconds;
  if (timeout > 0.0) job->token.SetTimeout(timeout);

  // Result-cache admission, before any queue interaction. Checked runs
  // never consult the cache: their purpose is executing under the
  // sanitizer, and a served result would skip the check.
  const bool cacheable =
      cache_ != nullptr && !job->spec.options.gpu_sanitize &&
      !(options_.sanitize_devices &&
        job->spec.options.backend == core::ComputeBackend::kGpu);
  bool enqueue = true;
  std::shared_ptr<const CachedResult> cached;
  if (cacheable) {
    if (job->spec.dataset_id.empty()) {
      // Inline-payload job: hash the caller's matrix the same way the
      // store would address it.
      dataset_hash = store::DatasetStore::ContentHash(*data);
    }
    ResultCacheKey cache_key = ResultCache::MakeKey(
        dataset_hash, job->spec.kind, job->spec.params, job->spec.options,
        job->spec.sweep);
    job->result.cache_key = cache_key.Hex();
    const ResultCache::Admission admission = cache_->AdmitOrJoin(
        cache_key, &cached,
        [job](const Status& status,
              std::shared_ptr<const CachedResult> payload) {
          // Fan-in from the leader's flight settlement. The follower may
          // have been cancelled (or timed out) meanwhile — then it is
          // already terminal and must not be notified twice.
          bool finished_here = false;
          {
            MutexLock lock(&job->mutex);
            if (job->phase == JobPhase::kQueued) {
              job->result.queue_seconds = SecondsSince(job->submit_time);
              if (status.ok()) {
                job->result.results = payload->results;
                job->result.setting_seconds = payload->setting_seconds;
                job->result.cache_hit = true;
              }
              job->stats->CountTerminal(status);
              job->FinishLocked(status);
              finished_here = true;
            }
          }
          if (finished_here) {
            // Outside the job lock (docs/concurrency.md).
            job->TraceQueueWait("dedup");
            job->FlushCallbacks();
          }
        });
    if (admission == ResultCache::Admission::kLead) {
      job->flight_cache = cache_.get();
      job->flight_key = std::move(cache_key);
    } else {
      // Hit or joined: the job never enters the queue — a joiner consumes
      // no queue slot, so dedup keeps working under queue-full
      // backpressure — but it still gets an id and counts as submitted.
      enqueue = false;
      {
        MutexLock lock(&queue_mutex_);
        if (stopping_ && admission == ResultCache::Admission::kHit) {
          // A joiner is still serviceable while stopping (the shutdown
          // drain settles its leader's flight); a plain hit honors the
          // post-Shutdown contract instead.
          return Status::FailedPrecondition("service is shut down");
        }
        job->id = next_job_id_++;
        MutexLock stats_lock(&stats_->mutex);
        ++stats_->submitted;
      }
      if (admission == ResultCache::Admission::kHit) {
        {
          MutexLock lock(&job->mutex);
          job->result.queue_seconds = SecondsSince(job->submit_time);
          job->result.results = cached->results;
          job->result.setting_seconds = cached->setting_seconds;
          job->result.cache_hit = true;
          stats_->CountTerminal(Status::OK());
          job->FinishLocked(Status::OK());
        }
        job->TraceQueueWait("cache_hit");
        job->FlushCallbacks();
      }
    }
  }

  if (enqueue) {
    Status enqueue_status;
    {
      MutexLock lock(&queue_mutex_);
      if (stopping_) {
        enqueue_status = Status::FailedPrecondition("service is shut down");
      } else {
        const int64_t depth = static_cast<int64_t>(
            interactive_queue_.size() + bulk_queue_.size());
        if (depth >= options_.queue_capacity) {
          MutexLock stats_lock(&stats_->mutex);
          ++stats_->rejected;
          enqueue_status = Status::ResourceExhausted("job queue is full");
        } else {
          job->id = next_job_id_++;
          (job->spec.priority == JobPriority::kInteractive
               ? interactive_queue_
               : bulk_queue_)
              .push_back(job);
          MutexLock stats_lock(&stats_->mutex);
          ++stats_->submitted;
          stats_->queue_depth_high_water =
              std::max(stats_->queue_depth_high_water, depth + 1);
        }
      }
    }
    if (!enqueue_status.ok()) {
      // A led flight must not leak: joiners that slipped in between the
      // admission and this rejection inherit the rejection (for a full
      // queue that is RESOURCE_EXHAUSTED — the one retryable code, so
      // clients back off and resubmit).
      if (job->flight_cache != nullptr) {
        job->flight_cache->FinishFlight(job->flight_key, enqueue_status,
                                        nullptr);
      }
      return enqueue_status;
    }
    work_available_.notify_one();
  }
  if (job->trace != nullptr && job->trace->enabled()) {
    job->trace->AddInstant(
        "job.submitted", "service",
        {obs::TraceArg::Int("job", static_cast<int64_t>(job->id)),
         obs::TraceArg::Str("kind", job->spec.kind == JobKind::kSingle
                                        ? "single"
                                        : "sweep"),
         obs::TraceArg::Str("priority",
                            job->spec.priority == JobPriority::kInteractive
                                ? "interactive"
                                : "bulk")});
  }
  *handle = JobHandle(std::move(job));
  return Status::OK();
}

std::shared_ptr<internal::Job> ProclusService::PopJobLocked() {
  // Interactive jobs overtake every queued bulk job; FIFO within a class.
  auto& queue =
      !interactive_queue_.empty() ? interactive_queue_ : bulk_queue_;
  std::shared_ptr<internal::Job> job = std::move(queue.front());
  queue.pop_front();
  return job;
}

void ProclusService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<internal::Job> job;
    {
      MutexLock lock(&queue_mutex_);
      while (!stopping_ && interactive_queue_.empty() &&
             bulk_queue_.empty()) {
        work_available_.wait(lock.native());
      }
      if (interactive_queue_.empty() && bulk_queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = PopJobLocked();
    }
    RunJob(job);
  }
}

void ProclusService::RunJob(const std::shared_ptr<internal::Job>& job) {
  const JobSpec& spec = job->spec;
  {
    Status queued_status;
    {
      MutexLock lock(&job->mutex);
      if (job->phase != JobPhase::kQueued) return;  // cancelled while queued
      job->result.queue_seconds = SecondsSince(job->submit_time);
      queued_status = job->token.Check();
      if (!queued_status.ok()) {
        // Cancelled or deadline elapsed before a worker got to it. Count
        // before FinishLocked so stats() is consistent once Wait() returns.
        stats_->CountTerminal(queued_status);
        job->FinishLocked(queued_status);
      } else {
        job->phase = JobPhase::kRunning;
        job->result.start_sequence = stats_->next_start_sequence++;
      }
    }
    if (!queued_status.ok()) {
      // Tracing and callbacks outside the job lock (docs/concurrency.md).
      job->TraceQueueWait(queued_status.code() == StatusCode::kCancelled
                              ? "cancelled"
                              : "timed_out");
      job->FlushCallbacks();
      job->SettleFlightFailed();
      return;
    }
  }
  job->TraceQueueWait("run");
  obs::TraceSpan run_span(job->trace, "job.run", "service");
  run_span.AddArg(obs::TraceArg::Int("job", static_cast<int64_t>(job->id)));
  run_span.AddArg(obs::TraceArg::Str(
      "kind", spec.kind == JobKind::kSingle ? "single" : "sweep"));

  core::ClusterOptions merged = spec.options;
  merged.cancel = &job->token;
  merged.trace = job->trace;
  DevicePool::Lease lease;
  // GPU sweeps go through the sweep scheduler, which leases its own set of
  // devices (possibly several) instead of the single-job lease below.
  const bool sharded_sweep = spec.kind == JobKind::kSweep &&
                             merged.backend == core::ComputeBackend::kGpu;
  if (merged.backend == core::ComputeBackend::kGpu && !sharded_sweep) {
    // Interruptible wait: a cancel or deadline that fires while every
    // pooled device is leased must not wedge this worker (satellite of the
    // serving layer — disconnecting clients cancel jobs at any phase).
    const Status acquire_status =
        device_pool_->AcquireFor(&job->token, &lease);
    if (!acquire_status.ok()) {
      run_span.AddArg(obs::TraceArg::Str(
          "outcome", JobPhaseName(PhaseForStatus(acquire_status))));
      run_span.End();
      stats_->CountTerminal(acquire_status);
      {
        MutexLock lock(&job->mutex);
        job->FinishLocked(acquire_status);
      }
      job->FlushCallbacks();
      job->SettleFlightFailed();
      return;
    }
    lease.device->ResetArena();
    lease.device->ResetStats();
    merged.device = lease.device;
  } else if (merged.backend == core::ComputeBackend::kMultiCore &&
             merged.num_threads == 0) {
    // Jobs without an explicit thread count share the service pool; the
    // per-call TaskGroup keeps concurrent jobs independent.
    merged.pool = compute_pool_.get();
  }

  StopWatch watch;
  Status status;
  std::vector<core::ProclusResult> results;
  std::vector<double> setting_seconds;
  int sweep_shards = 0;
  double modeled_gpu_seconds = 0.0;
  bool warm_device = false;
  int64_t sanitizer_findings = 0;
  int64_t sanitizer_checked_accesses = 0;
  std::vector<std::string> sanitizer_reports;
  if (spec.kind == JobKind::kSingle) {
    core::ProclusResult result;
    status = core::Cluster(*job->data, spec.params, merged, &result);
    if (status.ok()) results.push_back(std::move(result));
  } else if (sharded_sweep) {
    SweepScheduler scheduler(device_pool_.get());
    SweepScheduler::Outcome outcome;
    status =
        scheduler.Run(*job->data, spec.params, spec.sweep, merged, &outcome);
    if (status.ok()) {
      results = std::move(outcome.result.results);
      setting_seconds = std::move(outcome.result.setting_seconds);
    }
    sweep_shards = outcome.shards_used;
    modeled_gpu_seconds = outcome.modeled_gpu_seconds;
    warm_device = outcome.warm_device;
    sanitizer_findings = outcome.sanitizer_findings;
    sanitizer_checked_accesses = outcome.sanitizer_checked_accesses;
    sanitizer_reports = std::move(outcome.sanitizer_reports);
  } else {
    // CPU / multi-core sweeps have no pooled engine to shard over; they
    // run serially through the core runner and count as one shard.
    core::MultiParamOptions mp;
    mp.cluster = merged;
    core::MultiParamResult sweep;
    status =
        core::RunMultiParam(*job->data, spec.params, spec.sweep, mp, &sweep);
    if (status.ok()) {
      results = std::move(sweep.results);
      setting_seconds = std::move(sweep.setting_seconds);
    }
    sweep_shards = 1;
  }
  const double exec_seconds = watch.ElapsedSeconds();

  if (lease.device != nullptr) {
    modeled_gpu_seconds = lease.device->modeled_seconds();
    warm_device = lease.warm;
    if (const simt::Sanitizer* sanitizer = lease.device->sanitizer()) {
      // ResetStats above cleared the run state, so these figures belong to
      // this job alone.
      sanitizer_findings = sanitizer->findings();
      sanitizer_checked_accesses = sanitizer->checked_accesses();
      sanitizer_reports =
          sanitizer->Reports(simt::Sanitizer::kMaxDetailedViolations);
    }
    // Cluster/RunMultiParam already detached the recorder from the device;
    // make sure of it before the device returns to the pool.
    lease.device->set_trace(nullptr);
    device_pool_->Release(lease.device);
  }
  run_span.AddArg(
      obs::TraceArg::Str("outcome", JobPhaseName(PhaseForStatus(status))));
  if (modeled_gpu_seconds > 0.0) {
    run_span.AddArg(
        obs::TraceArg::Double("modeled_gpu_ms", modeled_gpu_seconds * 1e3));
  }
  if (sweep_shards > 0) {
    run_span.AddArg(obs::TraceArg::Int("sweep_shards", sweep_shards));
  }
  run_span.End();

  // Settle the led flight before the terminal transition publishes: once a
  // caller's Wait() returns, an identical resubmit must hit the cache, not
  // race the insert. Failed, cancelled and timed-out runs — and any run
  // with sanitizer findings — cache nothing; parked joiners inherit the
  // status either way.
  if (job->flight_cache != nullptr) {
    std::shared_ptr<const CachedResult> payload;
    if (status.ok() && sanitizer_findings == 0) {
      auto entry = std::make_shared<CachedResult>();
      entry->results = results;
      entry->setting_seconds = setting_seconds;
      payload = std::move(entry);
    }
    job->flight_cache->FinishFlight(job->flight_key, status,
                                    std::move(payload));
  }

  // Update the aggregate counters first: once FinishLocked runs, Wait()
  // returns and the caller may immediately read stats().
  {
    MutexLock lock(&stats_->mutex);
    stats_->exec_seconds_total += exec_seconds;
    stats_->modeled_gpu_seconds_total += modeled_gpu_seconds;
    stats_->sanitizer_findings_total += sanitizer_findings;
    stats_->sweep_shards_total += sweep_shards;
  }
  stats_->CountTerminal(status);
  {
    MutexLock lock(&job->mutex);
    job->result.results = std::move(results);
    job->result.setting_seconds = std::move(setting_seconds);
    job->result.exec_seconds = exec_seconds;
    job->result.modeled_gpu_seconds = modeled_gpu_seconds;
    job->result.warm_device = warm_device;
    job->result.sanitizer_findings = sanitizer_findings;
    job->result.sanitizer_checked_accesses = sanitizer_checked_accesses;
    job->result.sanitizer_reports = std::move(sanitizer_reports);
    job->result.sweep_shards = sweep_shards;
    job->FinishLocked(std::move(status));
  }
  job->FlushCallbacks();
}

void ProclusService::Shutdown() {
  {
    MutexLock lock(&queue_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // Submit and this function serialize acceptance and `stopping_` under
  // queue_mutex_, and workers only exit once both queues are empty, so no
  // accepted job can still be queued here. Drain defensively anyway: the
  // no-lost-job guarantee (every OK Submit reaches a terminal phase, see
  // the shutdown-race stress test) must survive future refactors of the
  // worker loop, not depend on them.
  std::deque<std::shared_ptr<internal::Job>> leftovers;
  {
    MutexLock lock(&queue_mutex_);
    leftovers.swap(interactive_queue_);
    for (auto& job : bulk_queue_) leftovers.push_back(std::move(job));
    bulk_queue_.clear();
  }
  for (const auto& job : leftovers) {
    bool finished_here = false;
    {
      MutexLock lock(&job->mutex);
      if (job->phase == JobPhase::kQueued) {
        job->result.queue_seconds = SecondsSince(job->submit_time);
        const Status status =
            Status::FailedPrecondition("service shut down before job ran");
        stats_->CountTerminal(status);
        job->FinishLocked(status);
        finished_here = true;
      }
    }
    if (finished_here) {
      // Outside the job lock (docs/concurrency.md).
      job->TraceQueueWait("shutdown");
      job->FlushCallbacks();
      job->SettleFlightFailed();
    }
  }

  // Nobody can wait on a device anymore; unwedge any stray waiter.
  device_pool_->Shutdown();
}

void ProclusService::PublishMetrics(obs::MetricsRegistry* registry,
                                    const std::string& prefix) const {
  PROCLUS_CHECK(registry != nullptr);
  const ServiceStats snap = stats();
  const auto set = [&](const char* name, double value) {
    registry->gauge(prefix + "." + name)->Set(value);
  };
  set("submitted", static_cast<double>(snap.submitted));
  set("rejected", static_cast<double>(snap.rejected));
  set("completed", static_cast<double>(snap.completed));
  set("failed", static_cast<double>(snap.failed));
  set("cancelled", static_cast<double>(snap.cancelled));
  set("timed_out", static_cast<double>(snap.timed_out));
  set("queue_depth_high_water",
      static_cast<double>(snap.queue_depth_high_water));
  set("device_acquires", static_cast<double>(snap.device_acquires));
  set("device_reuse_hits", static_cast<double>(snap.device_reuse_hits));
  set("exec_seconds_total", snap.exec_seconds_total);
  set("modeled_gpu_seconds_total", snap.modeled_gpu_seconds_total);
  set("sanitizer_findings_total",
      static_cast<double>(snap.sanitizer_findings_total));
  set("sweep_shards_total", static_cast<double>(snap.sweep_shards_total));
  set("datasets_resident_bytes",
      static_cast<double>(snap.datasets_resident_bytes));
  store_->PublishMetrics(registry, "store");
  // The cache publishes under its literal full names (service.cache.*).
  if (cache_ != nullptr) cache_->PublishMetrics(registry);
}

ServiceStats ProclusService::stats() const {
  ServiceStats snapshot;
  {
    MutexLock lock(&stats_->mutex);
    snapshot.submitted = stats_->submitted;
    snapshot.rejected = stats_->rejected;
    snapshot.completed = stats_->completed;
    snapshot.failed = stats_->failed;
    snapshot.cancelled = stats_->cancelled;
    snapshot.timed_out = stats_->timed_out;
    snapshot.queue_depth_high_water = stats_->queue_depth_high_water;
    snapshot.exec_seconds_total = stats_->exec_seconds_total;
    snapshot.modeled_gpu_seconds_total = stats_->modeled_gpu_seconds_total;
    snapshot.sanitizer_findings_total = stats_->sanitizer_findings_total;
    snapshot.sweep_shards_total = stats_->sweep_shards_total;
  }
  snapshot.device_acquires = device_pool_->acquires();
  snapshot.device_reuse_hits = device_pool_->reuse_hits();
  snapshot.datasets_resident_bytes = store_->stats().resident_bytes;
  return snapshot;
}

int64_t ProclusService::queue_depth() const {
  MutexLock lock(&queue_mutex_);
  return static_cast<int64_t>(interactive_queue_.size() +
                              bulk_queue_.size());
}

int ProclusService::devices_leased() const { return device_pool_->leased(); }

int ProclusService::device_capacity() const {
  return device_pool_->capacity();
}

}  // namespace proclus::service
