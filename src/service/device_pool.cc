#include "service/device_pool.h"

#include <chrono>

#include "common/macros.h"

namespace proclus::service {

DevicePool::DevicePool(int capacity, simt::DeviceProperties props,
                       bool prewarm, simt::DeviceOptions device_options)
    : capacity_(capacity), props_(props), device_options_(device_options) {
  PROCLUS_CHECK(capacity >= 1);
  entries_.resize(capacity_);
  if (prewarm) {
    for (Entry& entry : entries_) {
      entry.device = std::make_unique<simt::Device>(props_, device_options_);
    }
  }
}

DevicePool::Entry* DevicePool::FindIdleLocked() {
  // Prefer an idle device that is already constructed (and ideally warm);
  // fall back to constructing a new one within capacity.
  Entry* unconstructed = nullptr;
  for (Entry& entry : entries_) {
    if (entry.leased) continue;
    if (entry.device != nullptr) {
      if (entry.used_before) return &entry;
      if (unconstructed == nullptr || unconstructed->device == nullptr) {
        unconstructed = &entry;
      }
    } else if (unconstructed == nullptr) {
      unconstructed = &entry;
    }
  }
  return unconstructed;
}

Status DevicePool::AcquireFor(const parallel::CancellationToken* cancel,
                              Lease* lease) {
  PROCLUS_CHECK(lease != nullptr);
  *lease = Lease{};
  std::unique_lock<std::mutex> lock(mutex_);
  Entry* entry = nullptr;
  for (;;) {
    if (shutdown_) {
      return Status::FailedPrecondition("device pool is shut down");
    }
    if (cancel != nullptr) {
      // Checked before leasing: a job whose token already fired must not
      // grab a device only to release it unused.
      PROCLUS_RETURN_NOT_OK(cancel->Check());
    }
    if ((entry = FindIdleLocked()) != nullptr) break;
    // Slice the wait so a cancellation/deadline/shutdown that fires while
    // every device is leased unwedges the caller promptly.
    device_idle_.wait_for(lock, std::chrono::milliseconds(10));
  }
  if (entry->device == nullptr) {
    entry->device = std::make_unique<simt::Device>(props_, device_options_);
  }
  entry->leased = true;
  ++acquires_;
  lease->device = entry->device.get();
  lease->warm = entry->used_before;
  if (entry->used_before) ++reuse_hits_;
  entry->used_before = true;
  return Status::OK();
}

DevicePool::Lease DevicePool::Acquire() {
  Lease lease;
  const Status status = AcquireFor(nullptr, &lease);
  PROCLUS_CHECK(status.ok());
  return lease;
}

void DevicePool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  device_idle_.notify_all();
}

void DevicePool::Release(simt::Device* device) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (Entry& entry : entries_) {
      if (entry.device.get() == device) {
        PROCLUS_CHECK(entry.leased);
        entry.leased = false;
        device_idle_.notify_one();
        return;
      }
    }
    PROCLUS_CHECK(false);  // released a device this pool does not own
  }
}

int64_t DevicePool::acquires() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return acquires_;
}

int64_t DevicePool::reuse_hits() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return reuse_hits_;
}

}  // namespace proclus::service
