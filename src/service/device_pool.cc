#include "service/device_pool.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace proclus::service {

DevicePool::DevicePool(int capacity, simt::DeviceProperties props,
                       bool prewarm, simt::DeviceOptions device_options)
    : capacity_(capacity), props_(props), device_options_(device_options) {
  PROCLUS_CHECK(capacity >= 1);
  entries_.resize(capacity_);
  if (prewarm) {
    for (Entry& entry : entries_) {
      entry.device = std::make_unique<simt::Device>(props_, device_options_);
    }
  }
}

DevicePool::Entry* DevicePool::FindIdleLocked() {
  // Prefer an idle device that is already constructed (and ideally warm);
  // fall back to constructing a new one within capacity.
  Entry* unconstructed = nullptr;
  for (Entry& entry : entries_) {
    if (entry.leased) continue;
    if (entry.device != nullptr) {
      if (entry.used_before) return &entry;
      if (unconstructed == nullptr || unconstructed->device == nullptr) {
        unconstructed = &entry;
      }
    } else if (unconstructed == nullptr) {
      unconstructed = &entry;
    }
  }
  return unconstructed;
}

DevicePool::Lease DevicePool::LeaseEntryLocked(Entry* entry) {
  if (entry->device == nullptr) {
    entry->device = std::make_unique<simt::Device>(props_, device_options_);
  }
  entry->leased = true;
  ++acquires_;
  Lease lease;
  lease.device = entry->device.get();
  lease.warm = entry->used_before;
  if (entry->used_before) ++reuse_hits_;
  entry->used_before = true;
  return lease;
}

Status DevicePool::AcquireFor(const parallel::CancellationToken* cancel,
                              Lease* lease) {
  PROCLUS_CHECK(lease != nullptr);
  *lease = Lease{};
  std::vector<Lease> leases;
  PROCLUS_RETURN_NOT_OK(AcquireMany(1, 1, cancel, &leases));
  *lease = leases.front();
  return Status::OK();
}

Status DevicePool::AcquireMany(int min_count, int max_count,
                               const parallel::CancellationToken* cancel,
                               std::vector<Lease>* leases) {
  PROCLUS_CHECK(leases != nullptr);
  leases->clear();
  if (min_count < 1 || max_count < min_count) {
    return Status::InvalidArgument("AcquireMany needs 1 <= min <= max");
  }
  if (min_count > capacity_) {
    return Status::InvalidArgument(
        "AcquireMany min_count exceeds pool capacity");
  }
  std::function<Status()> fault_hook;
  {
    MutexLock lock(&mutex_);
    fault_hook = fault_hook_;
  }
  if (fault_hook) {
    // One draw per acquisition attempt, before any wait: an injected
    // failure looks like the device dying at hand-off, and the job fails
    // with the hook's (retryable) status instead of leasing anything.
    PROCLUS_RETURN_NOT_OK(fault_hook());
  }
  MutexLock lock(&mutex_);
  for (;;) {
    if (shutdown_) {
      return Status::FailedPrecondition("device pool is shut down");
    }
    if (cancel != nullptr) {
      // Checked before leasing: a job whose token already fired must not
      // grab devices only to release them unused.
      PROCLUS_RETURN_NOT_OK(cancel->Check());
    }
    int idle = 0;
    for (const Entry& entry : entries_) {
      if (!entry.leased) ++idle;
    }
    if (idle >= min_count) {
      // All leases are taken in this one critical section — the caller
      // never holds a partial set while blocked, so concurrent
      // multi-acquirers make progress in some order instead of
      // deadlocking on each other's partial holds.
      const int take = std::min(idle, max_count);
      for (int i = 0; i < take; ++i) {
        Entry* entry = FindIdleLocked();
        PROCLUS_CHECK(entry != nullptr);
        leases->push_back(LeaseEntryLocked(entry));
      }
      return Status::OK();
    }
    // Slice the wait so a cancellation/deadline/shutdown that fires while
    // every device is leased unwedges the caller promptly.
    device_idle_.wait_for(lock.native(), std::chrono::milliseconds(10));
  }
}

DevicePool::Lease DevicePool::Acquire() {
  Lease lease;
  const Status status = AcquireFor(nullptr, &lease);
  PROCLUS_CHECK(status.ok());
  return lease;
}

void DevicePool::Shutdown() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  device_idle_.notify_all();
}

void DevicePool::Release(simt::Device* device) {
  {
    MutexLock lock(&mutex_);
    for (Entry& entry : entries_) {
      if (entry.device.get() == device) {
        PROCLUS_CHECK(entry.leased);
        entry.leased = false;
        // notify_all, not notify_one: a waiter needing min_count > 1 may
        // pass on this release while a single-device waiter could have
        // taken it.
        device_idle_.notify_all();
        return;
      }
    }
    PROCLUS_CHECK(false);  // released a device this pool does not own
  }
}

void DevicePool::SetFaultHook(std::function<Status()> hook) {
  MutexLock lock(&mutex_);
  fault_hook_ = std::move(hook);
}

int DevicePool::leased() const {
  MutexLock lock(&mutex_);
  int leased = 0;
  for (const Entry& entry : entries_) {
    if (entry.leased) ++leased;
  }
  return leased;
}

int64_t DevicePool::acquires() const {
  MutexLock lock(&mutex_);
  return acquires_;
}

int64_t DevicePool::reuse_hits() const {
  MutexLock lock(&mutex_);
  return reuse_hits_;
}

}  // namespace proclus::service
