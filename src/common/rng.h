#ifndef PROCLUS_COMMON_RNG_H_
#define PROCLUS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace proclus {

// Deterministic pseudo-random number generator (xoshiro256**, seeded through
// SplitMix64). PROCLUS is a randomized algorithm; every variant in this
// library (baseline / FAST / FAST* / multi-core / GPU) draws its random
// decisions from an Rng in an identical, documented order so that a fixed
// seed yields an identical clustering across variants. The draw order is:
//
//   1. the Data' sample (SampleWithoutReplacement),
//   2. the first greedy medoid pick (UniformInt),
//   3. the initial current-medoid subset (SampleWithoutReplacement),
//   4. one replacement pick per bad medoid per iteration (UniformInt).
//
// Not thread-safe; each run owns its Rng.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [0, 1).
  float NextFloat();

  // Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  // sampling, so the result is unbiased.
  int64_t UniformInt(int64_t bound);

  // Standard normal deviate (Box-Muller; caches the second deviate).
  double Gaussian();

  // Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Draws `count` distinct indices uniformly from [0, population) via a
  // partial Fisher-Yates shuffle. Requires 0 <= count <= population. The
  // result order is the draw order (not sorted).
  std::vector<int> SampleWithoutReplacement(int64_t population, int64_t count);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (int64_t i = static_cast<int64_t>(values.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(values[i], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace proclus

#endif  // PROCLUS_COMMON_RNG_H_
