#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace proclus {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

int64_t Rng::UniformInt(int64_t bound) {
  PROCLUS_CHECK(bound > 0);
  const uint64_t ubound = static_cast<uint64_t>(bound);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % ubound;
  uint64_t value = NextU64();
  while (value >= limit) value = NextU64();
  return static_cast<int64_t>(value % ubound);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<int> Rng::SampleWithoutReplacement(int64_t population,
                                               int64_t count) {
  PROCLUS_CHECK(count >= 0);
  PROCLUS_CHECK(count <= population);
  std::vector<int> pool(population);
  for (int64_t i = 0; i < population; ++i) pool[i] = static_cast<int>(i);
  std::vector<int> picked(count);
  for (int64_t i = 0; i < count; ++i) {
    const int64_t j = i + UniformInt(population - i);
    std::swap(pool[i], pool[j]);
    picked[i] = pool[i];
  }
  return picked;
}

}  // namespace proclus
