#ifndef PROCLUS_COMMON_STATUS_H_
#define PROCLUS_COMMON_STATUS_H_

#include <string>
#include <utility>

// Marks a type or function whose return value must not be silently dropped.
// Applied to Status itself (below), so *every* function returning a Status —
// including StatusOr-style pairs that carry one — trips -Wunused-result when
// a call site ignores the outcome. Call sites that genuinely cannot act on a
// failure (best-effort writes on teardown paths) must say so explicitly by
// consuming the value, e.g. counting it into a metric; see
// docs/concurrency.md for the convention.
#define PROCLUS_MUST_USE_RESULT [[nodiscard]]

namespace proclus {

// Error category for Status. Mirrors the small set of failure modes the
// library can report; most API entry points validate their inputs and return
// kInvalidArgument rather than aborting.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kInternal,
  // Asynchronous execution (service/): the job was cancelled by its owner,
  // or its deadline elapsed before it completed.
  kCancelled,
  kDeadlineExceeded,
};

// Lightweight success-or-error result, in the style of arrow::Status.
// A default-constructed Status is OK. Statuses are cheap to copy for the OK
// case and carry a message otherwise.
class PROCLUS_MUST_USE_RESULT Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable representation, e.g. "InvalidArgument: k must be >= 1".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Explicitly discards a Status at call sites that are best-effort by design
// (teardown writes, fault-injection paths that are about to close the socket
// anyway). Prefer handling the error; use this only when no caller could act
// on it, and say why in a comment. Greppable, unlike a bare (void) cast.
inline void IgnoreError(const Status&) {}

// Returns early from the enclosing function if `expr` evaluates to a non-OK
// Status.
#define PROCLUS_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::proclus::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace proclus

#endif  // PROCLUS_COMMON_STATUS_H_
