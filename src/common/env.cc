#include "common/env.h"

#include <cstdlib>

namespace proclus {

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace proclus
