#ifndef PROCLUS_COMMON_MACROS_H_
#define PROCLUS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// PROCLUS_CHECK aborts the program with a diagnostic when `cond` is false.
// It is always enabled; use it to guard invariants whose violation would make
// continuing meaningless (out-of-bounds access, broken algorithm state).
#define PROCLUS_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PROCLUS_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

// PROCLUS_DCHECK is compiled out in release builds (NDEBUG).
#ifdef NDEBUG
#define PROCLUS_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define PROCLUS_DCHECK(cond) PROCLUS_CHECK(cond)
#endif

#endif  // PROCLUS_COMMON_MACROS_H_
