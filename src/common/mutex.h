#ifndef PROCLUS_COMMON_MUTEX_H_
#define PROCLUS_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace proclus {

// Annotated mutex: a std::mutex the clang thread-safety analysis can see.
// libstdc++'s std::mutex / std::lock_guard carry no capability
// annotations, so locking through them is invisible to -Wthread-safety;
// every concurrent class in this codebase guards its state with one of
// these instead and declares members GUARDED_BY(mutex_).
//
// Lock it with MutexLock (below). Lock()/Unlock() exist for the analysis
// and for the rare structured cases MutexLock cannot express — direct
// calls in application code are rejected by tools/prolint.py (raw-lock
// rule): scoped holders cannot leak a held lock on an early return.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Scoped holder for a Mutex; the only sanctioned way to lock one. Usable
// with std::condition_variable through native():
//
//   MutexLock lock(&mutex_);
//   while (!done_) cv_.wait(lock.native());   // done_ GUARDED_BY(mutex_)
//
// Predicate waits are written as explicit while-loops like the above: a
// predicate lambda is analyzed as a separate function and would not see
// the held capability, while the loop body is checked in the enclosing
// scope where the capability is visibly held. cv.wait() unlocks and
// relocks internally, which preserves the invariant the analysis assumes
// (capability held before and after the call).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : lock_(mu->mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() {}

  // The underlying lock, for std::condition_variable::wait. The wait
  // returns with the lock re-held, so the capability state is unchanged.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace proclus

#endif  // PROCLUS_COMMON_MUTEX_H_
