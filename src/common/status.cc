#include "common/status.h"

namespace proclus {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace proclus
