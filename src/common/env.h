#ifndef PROCLUS_COMMON_ENV_H_
#define PROCLUS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace proclus {

// Reads an integer from the environment, falling back to `fallback` when the
// variable is unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t fallback);

// Reads a double from the environment, falling back to `fallback`.
double GetEnvDouble(const char* name, double fallback);

// Reads a string from the environment, falling back to `fallback`.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace proclus

#endif  // PROCLUS_COMMON_ENV_H_
