#ifndef PROCLUS_COMMON_JSON_H_
#define PROCLUS_COMMON_JSON_H_

// Small shared JSON implementation: a strict recursive-descent parser and a
// compact writer over one value type. This is the single JSON code path in
// the repo — the net/ wire codec encodes and decodes with it, the obs
// metrics snapshot renders through it, and the tests validate emitted JSON
// with it (tests/testing/minijson.h is a thin alias shim). It is not a
// general-purpose library: no streaming, no comments, ASCII-only \u
// handling.
//
// Numbers keep their integer-ness: a token without '.', 'e' or 'E' that
// fits int64 round-trips through int64_t, so job ids, seeds and counters
// survive the wire exactly; everything else uses double with enough digits
// (%.17g) to round-trip bit-identically.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace proclus::json {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  // Valid when is_int: the exact integer the number was built from/parsed
  // as. number_value carries the (possibly rounded) double view.
  bool is_int = false;
  int64_t int_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::map<std::string, JsonValue> object_value;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Constructors for building values to Dump().
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.kind = Kind::kBool;
    v.bool_value = value;
    return v;
  }
  static JsonValue Int(int64_t value) {
    JsonValue v;
    v.kind = Kind::kNumber;
    v.is_int = true;
    v.int_value = value;
    v.number_value = static_cast<double>(value);
    return v;
  }
  static JsonValue Double(double value) {
    JsonValue v;
    v.kind = Kind::kNumber;
    v.number_value = value;
    return v;
  }
  static JsonValue Str(std::string value) {
    JsonValue v;
    v.kind = Kind::kString;
    v.string_value = std::move(value);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind = Kind::kObject;
    return v;
  }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object_value.find(key);
    return it == object_value.end() ? nullptr : &it->second;
  }

  // Building helpers (no-ops only via misuse; they set the kind).
  JsonValue& Set(const std::string& key, JsonValue value) {
    kind = Kind::kObject;
    object_value[key] = std::move(value);
    return *this;
  }
  JsonValue& Append(JsonValue value) {
    kind = Kind::kArray;
    array_value.push_back(std::move(value));
    return *this;
  }

  // Typed reads with defaults, for tolerant decoding of optional fields.
  int64_t AsInt(int64_t fallback = 0) const {
    if (kind != Kind::kNumber) return fallback;
    return is_int ? int_value : static_cast<int64_t>(number_value);
  }
  double AsDouble(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number_value : fallback;
  }
  bool AsBool(bool fallback = false) const {
    return kind == Kind::kBool ? bool_value : fallback;
  }
  std::string AsString(std::string fallback = {}) const {
    return kind == Kind::kString ? string_value : std::move(fallback);
  }
};

// Escapes `s` for embedding inside a JSON string literal (surrounding
// quotes not included).
std::string Escape(const std::string& s);

// Parses `text` into `*out`. Returns false (and fills `*error` with a
// message and offset if non-null) on malformed input.
bool Parse(const std::string& text, JsonValue* out,
           std::string* error = nullptr);

// Serializes `value` compactly (no whitespace). Integers print exactly;
// doubles print with %.17g so they parse back bit-identical; non-finite
// doubles degrade to 0 (JSON has no inf/nan).
std::string Dump(const JsonValue& value);
void Dump(const JsonValue& value, std::string* out);

}  // namespace proclus::json

#endif  // PROCLUS_COMMON_JSON_H_
