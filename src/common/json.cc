#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace proclus::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* word) {
      const size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      *out = JsonValue::Bool(true);
      return true;
    }
    if (match("false")) {
      *out = JsonValue::Bool(false);
      return true;
    }
    if (match("null")) {
      *out = JsonValue::Null();
      return true;
    }
    return Fail("bad keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected number");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    if (integral) {
      // Re-parse as int64 so ids/seeds/counters keep full precision; a
      // token outside int64 range stays a plain double.
      errno = 0;
      char* iend = nullptr;
      const long long as_int = std::strtoll(token.c_str(), &iend, 10);
      if (errno == 0 && iend != nullptr && *iend == '\0') {
        out->is_int = true;
        out->int_value = static_cast<int64_t>(as_int);
      }
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            // ASCII round-trips only; decode the low byte.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out->push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16) & 0x7f));
            break;
          }
          default: return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipSpace();
      if (!ParseValue(&element)) return false;
      out->array_value.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected , or ]");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected key string");
      }
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected :");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object_value[key] = std::move(value);
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected , or }");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

void DumpNumber(const JsonValue& value, std::string* out) {
  char buf[32];
  if (value.is_int) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, value.int_value);
  } else if (!std::isfinite(value.number_value)) {
    std::snprintf(buf, sizeof(buf), "0");
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value.number_value);
  }
  out->append(buf);
}

}  // namespace

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool Parse(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

void Dump(const JsonValue& value, std::string* out) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out->append("null");
      return;
    case JsonValue::Kind::kBool:
      out->append(value.bool_value ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      DumpNumber(value, out);
      return;
    case JsonValue::Kind::kString:
      out->push_back('"');
      out->append(Escape(value.string_value));
      out->push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : value.array_value) {
        if (!first) out->push_back(',');
        first = false;
        Dump(element, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.object_value) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(Escape(key));
        out->append("\":");
        Dump(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Dump(const JsonValue& value) {
  std::string out;
  Dump(value, &out);
  return out;
}

}  // namespace proclus::json
