#ifndef PROCLUS_COMMON_THREAD_ANNOTATIONS_H_
#define PROCLUS_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety (capability) analysis annotations, in the style of
// abseil's thread_annotations.h. Under clang with -Wthread-safety the
// compiler proves, for every call path, that
//
//   * a member declared GUARDED_BY(mu) is only touched while `mu` is held,
//   * a function declared REQUIRES(mu) is only called with `mu` held (the
//     convention for private `...Locked()` helpers),
//   * a function declared EXCLUDES(mu) is never called with `mu` held
//     (functions that acquire `mu` themselves, or invoke user callbacks),
//
// which turns lock discipline from a reviewed-and-hoped property into a
// compile-time one. On compilers without the attribute (gcc) everything
// expands to nothing, so the annotations are free.
//
// The capability types these annotations attach to live in
// common/mutex.h (`proclus::Mutex`, `proclus::MutexLock`): the standard
// library's std::mutex / std::lock_guard are *not* annotated under
// libstdc++, so guarded state must be locked through the annotated
// wrappers for the analysis to see the acquisition.
//
// Build with the analysis: cmake -DPROCLUS_THREAD_SAFETY=ON (clang only;
// adds -Wthread-safety -Wthread-safety-beta -Werror). See
// docs/concurrency.md for the project's lock hierarchy and conventions;
// tests/analysis/compile_fail/ pins that misuse actually fails to build.

#if defined(__clang__) && (!defined(SWIG))
#define PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// Declares a data member protected by the given capability. Reads require
// the capability shared; writes require it exclusively.
#define GUARDED_BY(x) PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Like GUARDED_BY for pointer members: the *pointed-to* data is protected.
#define PT_GUARDED_BY(x) PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// The function may only be called while holding the given capabilities;
// it neither acquires nor releases them.
#define REQUIRES(...) \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// The caller must NOT hold the given capabilities (typically because the
// function acquires them itself, or calls out while they must be free).
#define EXCLUDES(...) \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// The function acquires / releases the given capabilities.
#define ACQUIRE(...) \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Attaches to a type that models a capability (a mutex).
#define CAPABILITY(x) PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Attaches to a RAII type whose lifetime holds a capability (a scoped
// lock holder).
#define SCOPED_CAPABILITY PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// The function returns a reference to the given capability (accessor for
// an owned mutex, so callers can name it in their own annotations).
#define RETURN_CAPABILITY(x) \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Asserts at runtime semantics (no-op here) that the calling thread holds
// the capability; informs the analysis without acquiring.
#define ASSERT_CAPABILITY(x) \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Escape hatch: turns the analysis off for one function. Every use must
// carry a comment explaining why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  PROCLUS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PROCLUS_COMMON_THREAD_ANNOTATIONS_H_
