#ifndef PROCLUS_DATA_NORMALIZE_H_
#define PROCLUS_DATA_NORMALIZE_H_

#include <vector>

#include "data/matrix.h"

namespace proclus::data {

// Per-dimension range observed by MinMaxNormalize.
struct DimensionRange {
  float min = 0.0f;
  float max = 0.0f;
};

// Min-max normalizes every dimension of `m` to [0, 1] in place, as the paper
// does for all datasets. Constant dimensions are mapped to 0. Returns the
// original per-dimension ranges so values can be mapped back.
std::vector<DimensionRange> MinMaxNormalize(Matrix* m);

// Maps a normalized value in dimension `dim` back to the original domain.
float Denormalize(const std::vector<DimensionRange>& ranges, int dim,
                  float value);

}  // namespace proclus::data

#endif  // PROCLUS_DATA_NORMALIZE_H_
