#ifndef PROCLUS_DATA_IO_H_
#define PROCLUS_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace proclus::data {

// Writes `dataset.points` (and, when present, ground-truth labels as a final
// integer column) to a headerless CSV file.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                bool include_labels = true);

// Reads a headerless CSV file of floats. When `label_column` is true the last
// column is parsed as the integer ground-truth label. Rows must all have the
// same number of columns.
Status ReadCsv(const std::string& path, bool label_column, Dataset* out);

}  // namespace proclus::data

#endif  // PROCLUS_DATA_IO_H_
