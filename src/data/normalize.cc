#include "data/normalize.h"

#include <limits>

#include "common/macros.h"

namespace proclus::data {

std::vector<DimensionRange> MinMaxNormalize(Matrix* m) {
  PROCLUS_CHECK(m != nullptr);
  const int64_t n = m->rows();
  const int64_t d = m->cols();
  std::vector<DimensionRange> ranges(d);
  if (n == 0) return ranges;
  for (int64_t j = 0; j < d; ++j) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (int64_t i = 0; i < n; ++i) {
      const float v = (*m)(i, j);
      lo = v < lo ? v : lo;
      hi = v > hi ? v : hi;
    }
    ranges[j] = {lo, hi};
    const float span = hi - lo;
    if (span <= 0.0f) {
      for (int64_t i = 0; i < n; ++i) (*m)(i, j) = 0.0f;
    } else {
      for (int64_t i = 0; i < n; ++i) {
        (*m)(i, j) = ((*m)(i, j) - lo) / span;
      }
    }
  }
  return ranges;
}

float Denormalize(const std::vector<DimensionRange>& ranges, int dim,
                  float value) {
  PROCLUS_CHECK(dim >= 0 && dim < static_cast<int>(ranges.size()));
  const DimensionRange& r = ranges[dim];
  return r.min + value * (r.max - r.min);
}

}  // namespace proclus::data
