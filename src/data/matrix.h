#ifndef PROCLUS_DATA_MATRIX_H_
#define PROCLUS_DATA_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace proclus::data {

// Dense row-major matrix of 32-bit floats: `rows` points by `cols`
// dimensions. This is the in-memory layout every backend operates on (the
// GPU backend copies the same layout into device memory), so a point is a
// contiguous `cols`-element span.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0f) {
    PROCLUS_CHECK(rows >= 0 && cols >= 0);
  }

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& operator()(int64_t row, int64_t col) {
    PROCLUS_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return values_[row * cols_ + col];
  }
  float operator()(int64_t row, int64_t col) const {
    PROCLUS_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return values_[row * cols_ + col];
  }

  // Pointer to the first value of `row`.
  float* Row(int64_t row) {
    PROCLUS_DCHECK(row >= 0 && row < rows_);
    return values_.data() + row * cols_;
  }
  const float* Row(int64_t row) const {
    PROCLUS_DCHECK(row >= 0 && row < rows_);
    return values_.data() + row * cols_;
  }

  float* data() { return values_.data(); }
  const float* data() const { return values_.data(); }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           values_ == other.values_;
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> values_;
};

}  // namespace proclus::data

#endif  // PROCLUS_DATA_MATRIX_H_
