#ifndef PROCLUS_DATA_MATRIX_H_
#define PROCLUS_DATA_MATRIX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace proclus::data {

// Dense row-major matrix of 32-bit floats: `rows` points by `cols`
// dimensions. This is the in-memory layout every backend operates on (the
// GPU backend copies the same layout into device memory), so a point is a
// contiguous `cols`-element span.
//
// A matrix either owns its values (the default) or borrows them from an
// external buffer via Borrowed() — the zero-copy path the dataset store
// uses to serve mmap'ed `.pds` files (store/pds_format.h). A borrowed
// matrix is read-only: the mutating accessors abort. Copies of a borrowed
// matrix share the same view (and keep the owner handle alive); call
// Materialize() for an owned deep copy.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0f) {
    PROCLUS_CHECK(rows >= 0 && cols >= 0);
  }

  // Wraps an externally owned row-major buffer of rows*cols floats without
  // copying. `owner` keeps the buffer alive for as long as any copy of the
  // returned matrix exists (e.g. an mmap'ed file mapping).
  static Matrix Borrowed(int64_t rows, int64_t cols, const float* values,
                         std::shared_ptr<const void> owner) {
    PROCLUS_CHECK(rows >= 0 && cols >= 0 &&
                  (values != nullptr || rows * cols == 0));
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = values;
    m.owner_ = std::move(owner);
    return m;
  }

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool borrowed() const { return view_ != nullptr; }

  // Owned deep copy of this matrix (a plain copy for an owned one).
  Matrix Materialize() const {
    if (!borrowed()) return *this;
    Matrix m(rows_, cols_);
    std::copy(view_, view_ + size(), m.values_.data());
    return m;
  }

  float& operator()(int64_t row, int64_t col) {
    PROCLUS_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return data()[row * cols_ + col];
  }
  float operator()(int64_t row, int64_t col) const {
    PROCLUS_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return data()[row * cols_ + col];
  }

  // Pointer to the first value of `row`.
  float* Row(int64_t row) {
    PROCLUS_DCHECK(row >= 0 && row < rows_);
    return data() + row * cols_;
  }
  const float* Row(int64_t row) const {
    PROCLUS_DCHECK(row >= 0 && row < rows_);
    return data() + row * cols_;
  }

  float* data() {
    PROCLUS_CHECK(view_ == nullptr);  // borrowed matrices are read-only
    return values_.data();
  }
  const float* data() const {
    return view_ != nullptr ? view_ : values_.data();
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           std::equal(data(), data() + size(), other.data());
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> values_;
  // Borrowed mode: the values live in an external buffer kept alive by
  // `owner_`; `values_` stays empty.
  const float* view_ = nullptr;
  std::shared_ptr<const void> owner_;
};

}  // namespace proclus::data

#endif  // PROCLUS_DATA_MATRIX_H_
