#ifndef PROCLUS_DATA_GENERATOR_H_
#define PROCLUS_DATA_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace proclus::data {

// Configuration for the synthetic subspace-cluster generator. Reimplements
// the generator of Beer et al. [6] with the modification of GPU-INSCY [18]
// that clusters may live in *arbitrary* subspaces (not just prefixes). The
// defaults are the paper's: 64,000 points, 15 dimensions, values in
// [0, 100], 10 Gaussian clusters in 5-dimensional subspaces with standard
// deviation 5.0.
struct GeneratorConfig {
  int64_t n = 64000;
  int d = 15;
  int num_clusters = 10;
  // Number of relevant dimensions per cluster. When `max_subspace_dim` > 0,
  // each cluster's subspace size is instead drawn uniformly from
  // [subspace_dim, max_subspace_dim] (the generator of [6] supports
  // variable subspace sizes).
  int subspace_dim = 5;
  int max_subspace_dim = 0;
  // Standard deviation of the Gaussian in each relevant dimension, in domain
  // units (the paper normalizes afterwards). `stddev_jitter` in [0, 1)
  // draws each cluster's stddev uniformly from
  // [stddev*(1-jitter), stddev*(1+jitter)].
  double stddev = 5.0;
  double stddev_jitter = 0.0;
  double domain_min = 0.0;
  double domain_max = 100.0;
  // Fraction of points generated as uniform noise (ground-truth outliers).
  double outlier_fraction = 0.0;
  // If true, cluster sizes are equal (up to remainder); otherwise sizes are
  // drawn from a symmetric Dirichlet-like split with +/-50% variation.
  bool balanced = true;
  uint64_t seed = 1234;
};

// Generates a dataset per `config`. Ground-truth labels and subspaces are
// filled in. Means are placed at least 3*stddev away from the domain
// boundary (when feasible) so clusters are not clipped; values are clamped
// to the domain. Returns InvalidArgument for inconsistent configs.
Status GenerateSubspaceData(const GeneratorConfig& config, Dataset* out);

// Convenience wrapper that aborts on invalid configs (for tests/benches
// where the config is statically known to be valid).
Dataset GenerateSubspaceDataOrDie(const GeneratorConfig& config);

}  // namespace proclus::data

#endif  // PROCLUS_DATA_GENERATOR_H_
