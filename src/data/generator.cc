#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"

namespace proclus::data {

namespace {

Status Validate(const GeneratorConfig& c) {
  if (c.n <= 0) return Status::InvalidArgument("n must be positive");
  if (c.d <= 0) return Status::InvalidArgument("d must be positive");
  if (c.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (c.subspace_dim <= 0 || c.subspace_dim > c.d) {
    return Status::InvalidArgument("subspace_dim must be in [1, d]");
  }
  if (c.max_subspace_dim != 0 &&
      (c.max_subspace_dim < c.subspace_dim || c.max_subspace_dim > c.d)) {
    return Status::InvalidArgument(
        "max_subspace_dim must be in [subspace_dim, d] (or 0)");
  }
  if (c.stddev < 0.0) return Status::InvalidArgument("stddev must be >= 0");
  if (c.stddev_jitter < 0.0 || c.stddev_jitter >= 1.0) {
    return Status::InvalidArgument("stddev_jitter must be in [0, 1)");
  }
  if (c.domain_min >= c.domain_max) {
    return Status::InvalidArgument("domain_min must be < domain_max");
  }
  if (c.outlier_fraction < 0.0 || c.outlier_fraction >= 1.0) {
    return Status::InvalidArgument("outlier_fraction must be in [0, 1)");
  }
  return Status::OK();
}

}  // namespace

Status GenerateSubspaceData(const GeneratorConfig& config, Dataset* out) {
  PROCLUS_CHECK(out != nullptr);
  PROCLUS_RETURN_NOT_OK(Validate(config));

  Rng rng(config.seed);
  const int64_t num_outliers =
      static_cast<int64_t>(std::llround(config.outlier_fraction * config.n));
  const int64_t num_clustered = config.n - num_outliers;
  if (num_clustered < config.num_clusters) {
    return Status::InvalidArgument(
        "not enough clustered points for the requested number of clusters");
  }

  // Cluster sizes.
  std::vector<int64_t> sizes(config.num_clusters,
                             num_clustered / config.num_clusters);
  for (int64_t i = 0; i < num_clustered % config.num_clusters; ++i) {
    ++sizes[i];
  }
  if (!config.balanced) {
    // Shift up to half of each cluster's size to a random other cluster,
    // keeping every cluster non-empty.
    for (int i = 0; i < config.num_clusters; ++i) {
      const int64_t movable = sizes[i] / 2;
      if (movable <= 0) continue;
      const int64_t moved = rng.UniformInt(movable + 1);
      const int target =
          static_cast<int>(rng.UniformInt(config.num_clusters));
      sizes[i] -= moved;
      sizes[target] += moved;
    }
  }

  // Per-cluster subspaces (arbitrary dimensions, as in [18]; optionally of
  // varying size), means, and (optionally jittered) spreads.
  const double span = config.domain_max - config.domain_min;
  std::vector<std::vector<int>> subspaces(config.num_clusters);
  std::vector<std::vector<double>> means(config.num_clusters);
  std::vector<double> stddevs(config.num_clusters, config.stddev);
  for (int c = 0; c < config.num_clusters; ++c) {
    int dim_count = config.subspace_dim;
    if (config.max_subspace_dim > config.subspace_dim) {
      dim_count += static_cast<int>(rng.UniformInt(
          config.max_subspace_dim - config.subspace_dim + 1));
    }
    if (config.stddev_jitter > 0.0) {
      stddevs[c] = config.stddev *
                   (1.0 + config.stddev_jitter * (2.0 * rng.NextDouble() -
                                                  1.0));
    }
    const double margin = std::min(3.0 * stddevs[c], span / 2.0);
    subspaces[c] = rng.SampleWithoutReplacement(config.d, dim_count);
    std::sort(subspaces[c].begin(), subspaces[c].end());
    means[c].resize(dim_count);
    for (int j = 0; j < dim_count; ++j) {
      means[c][j] = config.domain_min + margin +
                    rng.NextDouble() * (span - 2.0 * margin);
    }
  }

  out->name = "synthetic";
  out->points = Matrix(config.n, config.d);
  out->labels.assign(config.n, kNoiseLabel);
  out->true_subspaces = subspaces;

  int64_t row = 0;
  for (int c = 0; c < config.num_clusters; ++c) {
    for (int64_t i = 0; i < sizes[c]; ++i, ++row) {
      out->labels[row] = c;
      float* p = out->points.Row(row);
      // Irrelevant dimensions: uniform over the full domain.
      for (int j = 0; j < config.d; ++j) {
        p[j] = static_cast<float>(config.domain_min +
                                  rng.NextDouble() * span);
      }
      // Relevant dimensions: Gaussian around the cluster mean, clamped.
      for (size_t s = 0; s < subspaces[c].size(); ++s) {
        const int j = subspaces[c][s];
        double value = rng.Gaussian(means[c][s], stddevs[c]);
        value = std::clamp(value, config.domain_min, config.domain_max);
        p[j] = static_cast<float>(value);
      }
    }
  }
  // Outliers: uniform everywhere.
  for (int64_t i = 0; i < num_outliers; ++i, ++row) {
    float* p = out->points.Row(row);
    for (int j = 0; j < config.d; ++j) {
      p[j] =
          static_cast<float>(config.domain_min + rng.NextDouble() * span);
    }
  }
  PROCLUS_CHECK(row == config.n);
  return Status::OK();
}

Dataset GenerateSubspaceDataOrDie(const GeneratorConfig& config) {
  Dataset out;
  const Status st = GenerateSubspaceData(config, &out);
  if (!st.ok()) {
    std::fprintf(stderr, "GenerateSubspaceData: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

}  // namespace proclus::data
