#ifndef PROCLUS_DATA_REAL_WORLD_H_
#define PROCLUS_DATA_REAL_WORLD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace proclus::data {

// Descriptor of one of the paper's real-world datasets (§5, "Real-world
// data"): UCI glass / vowel / pendigits and three SDSS SkyServer cutouts.
struct RealWorldSpec {
  std::string name;
  int64_t n = 0;
  int d = 0;
  int num_classes = 0;   // ground-truth classes (used by the stand-in)
  int subspace_dim = 0;  // relevant dims assumed by the stand-in generator
};

// The six datasets used in Fig. 3g, with the sizes reported in the paper.
const std::vector<RealWorldSpec>& RealWorldSpecs();

// Returns the spec for `name` ("glass", "vowel", "pendigits", "sky1x1",
// "sky2x2", "sky5x5"), or InvalidArgument.
Status FindRealWorldSpec(const std::string& name, RealWorldSpec* out);

// Loads the dataset `name`. If `<data_dir>/<name>.csv` exists it is read
// (last column = class label) — this lets users drop in the genuine UCI /
// SkyServer files. Otherwise a synthetic stand-in with the same n, d and a
// class structure matching `num_classes` is generated from a fixed seed.
// The original files are not redistributable here, and the paper uses them
// only to confirm that speedups transfer to real data distributions; the
// stand-in exercises identical code paths at identical sizes. The result is
// min-max normalized, as in the paper.
//
// `max_points` (0 = unlimited) truncates large datasets; benches use it to
// honor PROCLUS_BENCH_SCALE.
Status LoadRealWorld(const std::string& name, const std::string& data_dir,
                     int64_t max_points, Dataset* out);

}  // namespace proclus::data

#endif  // PROCLUS_DATA_REAL_WORLD_H_
