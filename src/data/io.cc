#include "data/io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace proclus::data {

Status WriteCsv(const Dataset& dataset, const std::string& path,
                bool include_labels) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const bool labels = include_labels && dataset.has_ground_truth();
  for (int64_t i = 0; i < dataset.n(); ++i) {
    const float* row = dataset.points.Row(i);
    for (int64_t j = 0; j < dataset.d(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    if (labels) out << ',' << dataset.labels[i];
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status ReadCsv(const std::string& path, bool label_column, Dataset* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::string line;
  int64_t expected_cols = -1;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<float> values;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const float v = std::strtof(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::IoError("unparsable cell at line " +
                               std::to_string(line_no) + " in " + path);
      }
      values.push_back(v);
    }
    if (label_column) {
      if (values.empty()) {
        return Status::IoError("missing label column at line " +
                               std::to_string(line_no) + " in " + path);
      }
      labels.push_back(static_cast<int>(std::lround(values.back())));
      values.pop_back();
    }
    if (expected_cols < 0) {
      expected_cols = static_cast<int64_t>(values.size());
      if (expected_cols == 0) {
        return Status::IoError("no feature columns in " + path);
      }
    } else if (static_cast<int64_t>(values.size()) != expected_cols) {
      return Status::IoError("inconsistent column count at line " +
                             std::to_string(line_no) + " in " + path);
    }
    rows.push_back(std::move(values));
  }
  if (rows.empty()) return Status::IoError("empty file: " + path);

  out->name = path;
  out->points = Matrix(static_cast<int64_t>(rows.size()), expected_cols);
  for (int64_t i = 0; i < out->n(); ++i) {
    for (int64_t j = 0; j < expected_cols; ++j) {
      out->points(i, j) = rows[i][j];
    }
  }
  out->labels = label_column ? std::move(labels) : std::vector<int>{};
  out->true_subspaces.clear();
  return Status::OK();
}

}  // namespace proclus::data
