#include "data/real_world.h"

#include <algorithm>
#include <filesystem>

#include "data/generator.h"
#include "data/io.h"
#include "data/normalize.h"

namespace proclus::data {

const std::vector<RealWorldSpec>& RealWorldSpecs() {
  static const std::vector<RealWorldSpec>& specs =
      *new std::vector<RealWorldSpec>{
          // {name, n, d, classes, stand-in subspace dim}
          {"glass", 214, 9, 6, 4},
          {"vowel", 990, 10, 11, 5},
          {"pendigits", 7494, 16, 10, 6},
          {"sky1x1", 30390, 17, 8, 6},
          {"sky2x2", 133095, 17, 8, 6},
          {"sky5x5", 934073, 17, 8, 6},
      };
  return specs;
}

Status FindRealWorldSpec(const std::string& name, RealWorldSpec* out) {
  for (const RealWorldSpec& spec : RealWorldSpecs()) {
    if (spec.name == name) {
      *out = spec;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown real-world dataset: " + name);
}

Status LoadRealWorld(const std::string& name, const std::string& data_dir,
                     int64_t max_points, Dataset* out) {
  RealWorldSpec spec;
  PROCLUS_RETURN_NOT_OK(FindRealWorldSpec(name, &spec));

  const std::filesystem::path csv =
      std::filesystem::path(data_dir) / (name + ".csv");
  std::error_code ec;
  if (!data_dir.empty() && std::filesystem::exists(csv, ec)) {
    PROCLUS_RETURN_NOT_OK(ReadCsv(csv.string(), /*label_column=*/true, out));
    out->name = name;
  } else {
    // Synthetic stand-in: same n/d, `num_classes` Gaussian clusters in
    // arbitrary subspaces plus 5% noise, fixed per-dataset seed.
    GeneratorConfig config;
    config.n = spec.n;
    config.d = spec.d;
    config.num_clusters = spec.num_classes;
    config.subspace_dim = std::min(spec.subspace_dim, spec.d);
    config.stddev = 5.0;
    config.outlier_fraction = 0.05;
    config.balanced = false;
    config.seed = 0x9e0c0de ^ std::hash<std::string>{}(name);
    PROCLUS_RETURN_NOT_OK(GenerateSubspaceData(config, out));
    out->name = name + " (stand-in)";
  }

  if (max_points > 0 && out->n() > max_points) {
    Matrix truncated(max_points, out->d());
    for (int64_t i = 0; i < max_points; ++i) {
      for (int64_t j = 0; j < out->d(); ++j) {
        truncated(i, j) = out->points(i, j);
      }
    }
    out->points = std::move(truncated);
    if (!out->labels.empty()) out->labels.resize(max_points);
  }

  MinMaxNormalize(&out->points);
  return Status::OK();
}

}  // namespace proclus::data
