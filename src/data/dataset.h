#ifndef PROCLUS_DATA_DATASET_H_
#define PROCLUS_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/matrix.h"

namespace proclus::data {

// Label used for generated outliers / noise points in ground truth.
inline constexpr int kNoiseLabel = -1;

// A dataset: points plus optional ground truth. `labels` and
// `true_subspaces` are populated by the synthetic generator and empty for
// datasets loaded without ground truth.
struct Dataset {
  std::string name;
  Matrix points;
  // Ground-truth cluster id per point (kNoiseLabel for outliers); empty if
  // unknown.
  std::vector<int> labels;
  // Ground-truth relevant dimensions per cluster (sorted); empty if unknown.
  std::vector<std::vector<int>> true_subspaces;

  int64_t n() const { return points.rows(); }
  int64_t d() const { return points.cols(); }
  bool has_ground_truth() const { return !labels.empty(); }
};

}  // namespace proclus::data

#endif  // PROCLUS_DATA_DATASET_H_
